package data

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/saga"
	"repro/internal/sim"
)

// Pilot is a Data-Pilot: a provisioned store on a storage backend,
// holding Data-Unit replicas. Unlike compute pilots there is no batch
// queue to wait in — the storage already exists — so a data pilot is
// usable as soon as AddPilot returns.
type Pilot struct {
	ID   string
	Desc PilotDescription

	store  Store
	mgr    *Manager
	index  int
	failed bool
	// cached tracks the opportunistic stage-in copies on this store in
	// recency order — the same LRU policy (internal/cache) behind the
	// Unit-Manager's result cache. The list itself is unbounded;
	// eviction is driven by the store's free space at CacheReplica time,
	// draining least-recently-read copies first.
	cached *cache.LRU[string, *Unit]
}

// Store returns the pilot's provisioned store.
func (dp *Pilot) Store() Store { return dp.store }

// Label returns the affinity label: Desc.Label, defaulting to the ID.
func (dp *Pilot) Label() string {
	if dp.Desc.Label != "" {
		return dp.Desc.Label
	}
	return dp.ID
}

// Manager owns data pilots and drives Data-Units through staging and
// replication — the Pilot-Data analogue of the Unit-Manager. Construct
// one per session with core.NewDataManager (pilot.NewDataManager).
type Manager struct {
	eng    *sim.Engine
	ft     *saga.FileTransfer
	pilots []*Pilot
	// names reserves each live (non-final) unit's logical name, so two
	// different datasets can never alias one store object.
	names map[string]*Unit
	// rec is the attached flight recorder, nil without one — the nil
	// check is the only cost recording adds to an unobserved manager.
	rec *obs.Recorder

	nextPilot int
	nextUnit  int
}

// NewManager creates a data manager staging over the given transfer
// facade.
func NewManager(e *sim.Engine, ft *saga.FileTransfer) *Manager {
	return &Manager{eng: e, ft: ft, names: make(map[string]*Unit)}
}

// SetRecorder attaches a flight recorder: Data-Unit state transitions,
// replica motion and store failures record through it from now on.
// core.NewDataManager forwards the session's recorder automatically;
// passing nil detaches.
func (dm *Manager) SetRecorder(r *obs.Recorder) { dm.rec = r }

// recordReplica emits one replica-motion event (placement,
// re-replication, caching, eviction, promotion) for du on dp.
func (dm *Manager) recordReplica(du *Unit, dp *Pilot, op string) {
	if r := dm.rec; r != nil {
		r.Record(obs.Event{Kind: obs.KindReplica, Op: op, Data: du.ID,
			Name: du.Name(), Pilot: dp.Label(), Bytes: du.Desc.SizeBytes})
	}
}

// AddPilot provisions a data pilot: the description's backend builds a
// store bound to the described storage. Labels must be unique so
// affinity names are unambiguous.
func (dm *Manager) AddPilot(d PilotDescription) (*Pilot, error) {
	backend, err := newBackend(d.Backend)
	if err != nil {
		return nil, err
	}
	dm.nextPilot++
	dp := &Pilot{
		ID:     fmt.Sprintf("dp.%04d", dm.nextPilot),
		Desc:   d,
		mgr:    dm,
		index:  len(dm.pilots),
		cached: cache.NewLRU[string, *Unit](0),
	}
	if d.Label == "" {
		dp.Desc.Label = dp.ID
	}
	for _, q := range dm.pilots {
		if q.Label() == dp.Label() {
			return nil, fmt.Errorf("data: duplicate data-pilot label %q", dp.Label())
		}
	}
	store, err := backend.Provision(dm.eng, dm.ft, dp.Desc)
	if err != nil {
		return nil, err
	}
	dp.store = store
	dm.pilots = append(dm.pilots, dp)
	return dp, nil
}

// Pilots returns the data pilots in registration order.
func (dm *Manager) Pilots() []*Pilot {
	out := make([]*Pilot, len(dm.pilots))
	copy(out, dm.pilots)
	return out
}

// Declare creates a Data-Unit in StateNew without staging it — the
// output-staging entry point: a Compute-Unit naming the declared unit in
// Outputs stages it when it completes. Names are unique among the
// manager's live units; the name frees up once a unit reaches a final
// state.
func (dm *Manager) Declare(d UnitDescription) (*Unit, error) {
	d = d.withDefaults()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if holder, taken := dm.names[d.Name]; taken {
		return nil, fmt.Errorf("data: name %q already declared by live unit %s", d.Name, holder.ID)
	}
	dm.nextUnit++
	du := &Unit{
		ID:         fmt.Sprintf("du.%06d", dm.nextUnit),
		Desc:       d,
		mgr:        dm,
		watch:      sim.NewNotifier[UnitState](dm.eng),
		Timestamps: make(map[UnitState]sim.Duration),
	}
	du.Timestamps[StateNew] = dm.eng.Now()
	dm.names[d.Name] = du
	du.watch.Subscribe(func(st UnitState) {
		if st.Final() && dm.names[d.Name] == du {
			delete(dm.names, d.Name)
		}
	})
	return du, nil
}

// Submit declares a Data-Unit and stages it, blocking p until the
// replication target is met. On staging errors the returned unit is
// non-nil with Err set, so callers can inspect the failed unit.
func (dm *Manager) Submit(p *sim.Proc, d UnitDescription) (*Unit, error) {
	du, err := dm.Declare(d)
	if err != nil {
		return nil, err
	}
	if err := dm.Stage(p, du); err != nil {
		return du, err
	}
	return du, nil
}

// Stage places the unit's replicas: the first is staged from the
// description's Source (nil: produced in place), the remaining ones are
// copied store-to-store, overlapping read and write. Placement is
// deterministic — affinity match first, then least-occupied store,
// ties broken by registration order; stores the unit would overflow are
// skipped. Staging an already Replicated unit is a no-op; a concurrent
// Stage waits for the in-flight one.
func (dm *Manager) Stage(p *sim.Proc, du *Unit) error {
	if du.mgr != dm {
		return fmt.Errorf("data: unit %s belongs to another manager", du.ID)
	}
	switch {
	case du.state == StateReplicated:
		return nil
	case du.state == StateStagingIn:
		if du.WaitReady(p) {
			return nil
		}
		return fmt.Errorf("data: unit %s: %w: concurrent staging ended %v", du.ID, ErrUnavailable, du.state)
	case du.state.Final():
		return fmt.Errorf("data: unit %s: %w: already %v", du.ID, ErrUnavailable, du.state)
	}
	targets := dm.placeReplicas(du)
	if len(targets) == 0 {
		err := fmt.Errorf("data: unit %s: %w for %d bytes among %d pilots",
			du.ID, ErrNoPilots, du.Desc.SizeBytes, len(dm.pilots))
		du.fail(err)
		return err
	}
	du.advance(StateStagingIn)
	first := targets[0]
	if err := first.store.Ingest(p, du.Name(), du.Desc.SizeBytes, du.Desc.Source); err != nil {
		err = fmt.Errorf("data: unit %s stage-in to %s: %w", du.ID, first.store.Name(), err)
		du.fail(err)
		return err
	}
	if first.failed {
		// FailPilot hit the target while the ingest was in flight: the
		// bytes died with the store, so a failed store must never be
		// recorded as a replica holder.
		err := fmt.Errorf("data: unit %s stage-in to %s: %w: store failed during staging",
			du.ID, first.store.Name(), ErrUnavailable)
		du.fail(err)
		return err
	}
	du.replicas = append(du.replicas, first)
	dm.recordReplica(du, first, "place")
	if err := dm.abandonIfCanceled(p, du); err != nil {
		return err
	}
	for _, t := range targets[1:] {
		if t.failed {
			continue // died since placement; the target count caps at survivors
		}
		if err := dm.copyReplica(p, du, first, t); err != nil {
			// Free the replicas already placed — a failed unit cannot
			// be Removed, so leaving them would leak store capacity and
			// keep counting toward the locality schedulers' byte scores.
			dm.dropReplicas(p, du)
			err = fmt.Errorf("data: unit %s replica to %s: %w", du.ID, t.store.Name(), err)
			du.fail(err)
			return err
		}
		if t.failed {
			continue // died mid-copy; bytes lost with the store
		}
		du.replicas = append(du.replicas, t)
		dm.recordReplica(du, t, "place")
		if err := dm.abandonIfCanceled(p, du); err != nil {
			return err
		}
	}
	du.advance(StateReplicated)
	return nil
}

// dropReplicas deletes every placed replica of du, tolerating stores
// that no longer hold the object.
func (dm *Manager) dropReplicas(p *sim.Proc, du *Unit) {
	for _, dp := range du.replicas {
		_ = dp.store.Delete(p, du.Name())
	}
	du.replicas = nil
}

// abandonIfCanceled handles a Cancel that raced an in-flight Stage:
// the replicas placed so far are deleted and the staging call reports
// the unit unavailable instead of silently succeeding on a canceled
// unit.
func (dm *Manager) abandonIfCanceled(p *sim.Proc, du *Unit) error {
	if !du.state.Final() {
		return nil
	}
	dm.dropReplicas(p, du)
	return fmt.Errorf("data: unit %s: %w: %v during staging", du.ID, ErrUnavailable, du.state)
}

// copyReplica moves one replica of du from src to dst. When the source
// store exposes a flat volume the copy runs over the SAGA pipelined
// path; otherwise (HDFS) the source read is overlapped with the
// destination ingest by hand.
func (dm *Manager) copyReplica(p *sim.Proc, du *Unit, src, dst *Pilot) error {
	name, bytes := du.Name(), du.Desc.SizeBytes
	if vol := src.store.Volume(); vol != nil {
		return dst.store.Ingest(p, name, bytes, vol)
	}
	done := sim.NewEvent(dm.eng)
	var serveErr error
	dm.eng.Spawn("data:replica:"+du.ID, func(rp *sim.Proc) {
		defer done.Trigger()
		serveErr = src.store.ServeTo(rp, name, nil)
	})
	err := dst.store.Ingest(p, name, bytes, nil)
	p.Wait(done)
	if err != nil {
		return err
	}
	return serveErr
}

// placeReplicas chooses the target pilots for du, deterministically:
// affinity match first, then ascending store occupancy, ties broken by
// registration order; stores the unit would overflow are skipped. The
// count is capped at the eligible pilots, like HDFS caps replication at
// its DataNode count.
func (dm *Manager) placeReplicas(du *Unit) []*Pilot {
	eligible := make([]*Pilot, 0, len(dm.pilots))
	for _, dp := range dm.pilots {
		if dp.failed {
			continue // a failed store never receives replicas
		}
		if dp.store.Has(du.Name()) {
			continue // never two replicas on one store
		}
		if cap := dp.store.CapacityBytes(); cap > 0 && dp.store.UsedBytes()+du.Desc.SizeBytes > cap {
			continue
		}
		eligible = append(eligible, dp)
	}
	sort.SliceStable(eligible, func(i, j int) bool {
		a, b := eligible[i], eligible[j]
		am := du.Desc.Affinity != "" && (a.Label() == du.Desc.Affinity || a.ID == du.Desc.Affinity)
		bm := du.Desc.Affinity != "" && (b.Label() == du.Desc.Affinity || b.ID == du.Desc.Affinity)
		if am != bm {
			return am
		}
		if ua, ub := a.store.UsedBytes(), b.store.UsedBytes(); ua != ub {
			return ua < ub
		}
		return a.index < b.index
	})
	if len(eligible) > du.Desc.Replication {
		eligible = eligible[:du.Desc.Replication]
	}
	return eligible
}

// Remove deletes every replica of du and retires it to StateDone — the
// end of the data unit's lifecycle.
func (dm *Manager) Remove(p *sim.Proc, du *Unit) error {
	if du.mgr != dm {
		return fmt.Errorf("data: unit %s belongs to another manager", du.ID)
	}
	if du.state.Final() {
		return fmt.Errorf("data: unit %s: %w: already %v", du.ID, ErrUnavailable, du.state)
	}
	// Replicas are dropped from the list as they are deleted, so a
	// Remove that fails partway is retryable without re-deleting.
	for len(du.replicas) > 0 {
		dp := du.replicas[0]
		if err := dp.store.Delete(p, du.Name()); err != nil {
			return err
		}
		du.replicas = du.replicas[1:]
	}
	// Opportunistic cached copies retire with the unit too.
	for len(du.cached) > 0 {
		dp := du.cached[0]
		if err := dp.store.Delete(p, du.Name()); err != nil {
			return err
		}
		dp.cached.Remove(du.Name())
		du.cached = du.cached[1:]
	}
	du.advance(StateDone)
	return nil
}

// Cancel retires a unit that has not finished staging; an in-flight
// Stage notices at its next step, deletes the replicas it already
// placed, and returns ErrUnavailable. Canceling a Replicated or final
// unit is a no-op.
func (dm *Manager) Cancel(du *Unit) {
	if du.state.Final() || du.state == StateReplicated {
		return
	}
	du.state = StateCanceled
	du.Timestamps[StateCanceled] = dm.eng.Now()
	dm.eng.Tracef("data unit %s -> CANCELED", du.ID)
	du.recordState(StateCanceled, "")
	du.watch.Entered(StateCanceled)
}

package data

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/saga"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Store is a provisioned data-backend instance: the place a data pilot
// keeps its replicas. Implementations charge the backend's real cost
// model — shared-filesystem round trips for Lustre, the replication
// pipeline and block reads for HDFS, memory bandwidth for the in-memory
// tier.
type Store interface {
	// Name identifies the store in traces, e.g. "hdfs:dp.0002".
	Name() string
	// Backend is the registry key of the backend that provisioned it.
	Backend() string
	// Ingest stores bytes under name. When src is non-nil the bytes are
	// staged from it (reading src and writing the store overlap — the
	// pipelined staging path); a nil src charges only the local write
	// path (the object is produced in place).
	Ingest(p *sim.Proc, name string, bytes int64, src storage.Volume) error
	// ServeTo charges a full read of the named object toward the
	// consumer node (nil: a store-local consumer). Reading pays the
	// store's read path; HDFS stores additionally pay network legs for
	// readers outside their DataNode set.
	ServeTo(p *sim.Proc, name string, reader *cluster.Node) error
	// Volume is the store's transfer endpoint: replica-to-replica copies
	// read from it. Nil when the backend has no flat volume to expose
	// (HDFS); the Manager then overlaps ServeTo with the destination's
	// Ingest instead.
	Volume() storage.Volume
	// Has reports whether the store holds the named object, and
	// ObjectBytes its size (0 when absent).
	Has(name string) bool
	ObjectBytes(name string) int64
	// UsedBytes is the store's occupancy; CapacityBytes its configured
	// limit (0 = unbounded).
	UsedBytes() int64
	CapacityBytes() int64
	// Delete frees the named object.
	Delete(p *sim.Proc, name string) error
}

// objects is the shared bookkeeping of the built-in stores.
type objects struct {
	byName   map[string]int64
	used     int64
	capacity int64
}

func newObjects(capacity int64) objects {
	return objects{byName: make(map[string]int64), capacity: capacity}
}

// admit validates an ingest of bytes under name.
func (o *objects) admit(store, name string, bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("data: negative object size %d for %q", bytes, name)
	}
	if _, dup := o.byName[name]; dup {
		return fmt.Errorf("data: store %s already holds %q", store, name)
	}
	if o.capacity > 0 && o.used+bytes > o.capacity {
		return fmt.Errorf("data: store %s: %w: %d + %d exceeds %d bytes",
			store, ErrStoreFull, o.used, bytes, o.capacity)
	}
	return nil
}

func (o *objects) put(name string, bytes int64) {
	o.byName[name] = bytes
	o.used += bytes
}

func (o *objects) drop(name string) {
	o.used -= o.byName[name]
	delete(o.byName, name)
}

// volumeStore keeps objects on a flat storage.Volume — the Lustre and
// in-memory built-ins, and the simplest base for custom backends (see
// NewVolumeStore). Staging in from a source volume runs over the SAGA
// pipelined copy.
type volumeStore struct {
	name    string
	backend string
	ft      *saga.FileTransfer
	vol     storage.Volume
	objects objects
}

// NewVolumeStore builds a Store over an arbitrary volume — the
// one-liner custom data backends provision from:
//
//	data.RegisterBackend("scratch", func() data.Backend { return scratchBackend{} })
//	// in Provision:
//	return data.NewVolumeStore(ft, "scratch:"+d.Label, "scratch", d.Volume, d.CapacityBytes), nil
func NewVolumeStore(ft *saga.FileTransfer, name, backend string, vol storage.Volume, capacity int64) Store {
	return &volumeStore{
		name: name, backend: backend, ft: ft, vol: vol,
		objects: newObjects(capacity),
	}
}

func (s *volumeStore) Name() string           { return s.name }
func (s *volumeStore) Backend() string        { return s.backend }
func (s *volumeStore) Volume() storage.Volume { return s.vol }
func (s *volumeStore) Has(name string) bool   { _, ok := s.objects.byName[name]; return ok }
func (s *volumeStore) ObjectBytes(name string) int64 {
	return s.objects.byName[name]
}
func (s *volumeStore) UsedBytes() int64     { return s.objects.used }
func (s *volumeStore) CapacityBytes() int64 { return s.objects.capacity }

func (s *volumeStore) Ingest(p *sim.Proc, name string, bytes int64, src storage.Volume) error {
	if err := s.objects.admit(s.name, name, bytes); err != nil {
		return err
	}
	if src != nil {
		if err := s.ft.CopyPipelined(p, src, s.vol, bytes); err != nil {
			return err
		}
	} else {
		s.vol.Write(p, bytes)
	}
	s.objects.put(name, bytes)
	return nil
}

func (s *volumeStore) ServeTo(p *sim.Proc, name string, _ *cluster.Node) error {
	bytes, ok := s.objects.byName[name]
	if !ok {
		return fmt.Errorf("data: store %s does not hold %q", s.name, name)
	}
	s.vol.Read(p, bytes)
	return nil
}

func (s *volumeStore) Delete(p *sim.Proc, name string) error {
	if !s.Has(name) {
		return fmt.Errorf("data: store %s does not hold %q", s.name, name)
	}
	s.vol.Touch(p)
	s.objects.drop(name)
	return nil
}

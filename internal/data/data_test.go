package data

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/saga"
	"repro/internal/sim"
	"repro/internal/storage"
)

func testMachine(e *sim.Engine, nodes int) *cluster.Machine {
	return cluster.New(e, cluster.MachineSpec{
		Name:  "dm",
		Nodes: nodes,
		Node: cluster.NodeSpec{
			Cores: 8, MemoryMB: 32 * 1024, DiskBW: 200e6,
			DiskOpLatency: time.Millisecond, NICBW: 1e9,
		},
		FabricBW: 10e9,
		Lustre: storage.LustreSpec{
			AggregateBW: 2e9, MDSServers: 4,
			MDSServiceTime: 2 * time.Millisecond, ClientLatency: 3 * time.Millisecond,
		},
		CPUFactor:  1,
		ExternalBW: 100e6,
	})
}

// newTestManager builds a manager plus the machine context stores bind
// to.
func newTestManager(t *testing.T) (*sim.Engine, *cluster.Machine, *Manager) {
	t.Helper()
	e := sim.NewEngine()
	t.Cleanup(e.Close)
	m := testMachine(e, 4)
	return e, m, NewManager(e, saga.NewFileTransfer(e))
}

// TestRegistryHygiene mirrors the compute-backend registry rules.
func TestRegistryHygiene(t *testing.T) {
	for _, want := range []string{BackendLustre, BackendHDFS, BackendMem} {
		if !backends.Has(want) {
			t.Errorf("built-in backend %q not registered", want)
		}
	}
	if err := RegisterBackend("", func() Backend { return lustreBackend{} }); err == nil {
		t.Error("empty name accepted")
	}
	if err := RegisterBackend("nil-factory", nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := RegisterBackend(BackendLustre, func() Backend { return lustreBackend{} }); err == nil {
		t.Error("duplicate registration accepted")
	}
	_, m, dm := newTestManager(t)
	_ = m
	if _, err := dm.AddPilot(PilotDescription{Backend: "no-such"}); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("AddPilot unknown backend = %v, want ErrUnknownBackend", err)
	}
}

// TestStateMachineAndPlacement drives one unit through the lifecycle
// over two lustre pilots and checks replication, affinity and state
// order.
func TestStateMachineAndPlacement(t *testing.T) {
	e, m, dm := newTestManager(t)
	a, err := dm.AddPilot(PilotDescription{Backend: BackendLustre, Label: "a", Lustre: m.Lustre})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dm.AddPilot(PilotDescription{Backend: BackendLustre, Label: "b", Lustre: m.Lustre})
	if err != nil {
		t.Fatal(err)
	}
	var seen []UnitState
	e.Spawn("driver", func(p *sim.Proc) {
		du, err := dm.Declare(UnitDescription{Name: "/d/x", SizeBytes: 1 << 20, Replication: 2, Affinity: "b"})
		if err != nil {
			t.Error(err)
			return
		}
		du.OnStateChange(func(_ *Unit, st UnitState) { seen = append(seen, st) })
		if err := dm.Stage(p, du); err != nil {
			t.Error(err)
			return
		}
		if !du.WaitReady(p) {
			t.Errorf("unit not ready after Stage: %v", du.State())
		}
		reps := du.Replicas()
		if len(reps) != 2 {
			t.Fatalf("replicas = %d, want 2", len(reps))
		}
		if reps[0] != b {
			t.Errorf("affinity ignored: first replica on %s, want b", reps[0].Label())
		}
		if !du.ReplicaOn(a) || !du.ReplicaOn(b) {
			t.Error("replicas missing from a or b")
		}
		if a.Store().ObjectBytes("/d/x") != 1<<20 || b.Store().ObjectBytes("/d/x") != 1<<20 {
			t.Error("bytes lost: stores disagree with the declared size")
		}
		// Stage is idempotent once replicated.
		if err := dm.Stage(p, du); err != nil {
			t.Errorf("restaging a replicated unit: %v", err)
		}
		if err := dm.Remove(p, du); err != nil {
			t.Error(err)
		}
		if du.State() != StateDone {
			t.Errorf("state after Remove = %v", du.State())
		}
		if a.Store().UsedBytes() != 0 || b.Store().UsedBytes() != 0 {
			t.Error("Remove left bytes behind")
		}
	})
	e.Run()
	want := []UnitState{StateStagingIn, StateReplicated, StateDone}
	if len(seen) != len(want) {
		t.Fatalf("state trace %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("state trace %v, want %v", seen, want)
		}
	}
}

// TestCapacitySkipsFullStores: a bounded store the unit would overflow
// is skipped, and staging fails with ErrNoPilots when nothing fits.
func TestCapacitySkipsFullStores(t *testing.T) {
	e, m, dm := newTestManager(t)
	small, err := dm.AddPilot(PilotDescription{
		Backend: BackendMem, Label: "small", CapacityBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	big, err := dm.AddPilot(PilotDescription{Backend: BackendLustre, Label: "big", Lustre: m.Lustre})
	if err != nil {
		t.Fatal(err)
	}
	e.Spawn("driver", func(p *sim.Proc) {
		du, err := dm.Submit(p, UnitDescription{Name: "/d/huge", SizeBytes: 8 << 20})
		if err != nil {
			t.Error(err)
			return
		}
		if du.ReplicaOn(small) || !du.ReplicaOn(big) {
			t.Errorf("placement ignored capacity: replicas on %v", du.Replicas())
		}
		tiny, err := dm.Submit(p, UnitDescription{Name: "/d/tiny", SizeBytes: 512 << 10})
		if err != nil {
			t.Error(err)
			return
		}
		if !tiny.ReplicaOn(small) {
			t.Errorf("least-occupied store not preferred: replicas on %v", tiny.Replicas())
		}
	})
	e.Run()
}

// TestStagingFailsWhenNothingFits: with every store's capacity
// exhausted, staging fails with ErrNoPilots and leaves the unit FAILED.
func TestStagingFailsWhenNothingFits(t *testing.T) {
	e, _, dm := newTestManager(t)
	if _, err := dm.AddPilot(PilotDescription{
		Backend: BackendMem, Label: "tiny", CapacityBytes: 1 << 20,
	}); err != nil {
		t.Fatal(err)
	}
	e.Spawn("driver", func(p *sim.Proc) {
		du, err := dm.Submit(p, UnitDescription{Name: "/d/nofit", SizeBytes: 8 << 20})
		if !errors.Is(err, ErrNoPilots) {
			t.Errorf("Submit over capacity = %v, want ErrNoPilots", err)
		}
		if du == nil || du.State() != StateFailed || !errors.Is(du.Err, ErrNoPilots) {
			t.Error("over-capacity staging did not leave the unit FAILED with ErrNoPilots")
		}
	})
	e.Run()
}

// TestHDFSStoreRoundTrip exercises the hdfs-backed store: ingest pays
// the replication pipeline onto DataNode disks, ServeTo reads back, and
// fs.Used reflects the stored replicas.
func TestHDFSStoreRoundTrip(t *testing.T) {
	e, m, dm := newTestManager(t)
	fs, err := hdfs.New(e, hdfs.DefaultConfig(), m.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := dm.AddPilot(PilotDescription{Backend: BackendHDFS, Label: "h", HDFS: fs})
	if err != nil {
		t.Fatal(err)
	}
	e.Spawn("driver", func(p *sim.Proc) {
		du, err := dm.Submit(p, UnitDescription{Name: "/d/blocks", SizeBytes: 4 << 20, Source: m.Lustre})
		if err != nil {
			t.Error(err)
			return
		}
		if !du.ReplicaOn(dp) {
			t.Fatalf("replica not on the hdfs pilot: %v", du.Replicas())
		}
		if fs.Used() == 0 {
			t.Error("fs.Used() = 0 after ingest, bytes lost")
		}
		if err := dp.Store().ServeTo(p, du.Name(), m.Nodes[1]); err != nil {
			t.Error(err)
		}
		if err := dm.Remove(p, du); err != nil {
			t.Error(err)
		}
		if fs.Used() != 0 {
			t.Errorf("fs.Used() = %d after Remove, want 0", fs.Used())
		}
	})
	e.Run()
}

// TestDuplicateNamesRejected: logical names are unique among live
// units, and free up once a unit reaches a final state.
func TestDuplicateNamesRejected(t *testing.T) {
	e, m, dm := newTestManager(t)
	if _, err := dm.AddPilot(PilotDescription{Backend: BackendLustre, Label: "a", Lustre: m.Lustre}); err != nil {
		t.Fatal(err)
	}
	e.Spawn("driver", func(p *sim.Proc) {
		du, err := dm.Submit(p, UnitDescription{Name: "/d/same", SizeBytes: 1 << 20})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := dm.Declare(UnitDescription{Name: "/d/same", SizeBytes: 1 << 20}); err == nil {
			t.Error("duplicate live name accepted")
		}
		if err := dm.Remove(p, du); err != nil {
			t.Error(err)
			return
		}
		// The name is free again once the first unit retired.
		if _, err := dm.Declare(UnitDescription{Name: "/d/same", SizeBytes: 1 << 20}); err != nil {
			t.Errorf("name not released after Remove: %v", err)
		}
	})
	e.Run()
}

package saga

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/storage"
)

// FileTransfer is the SAGA file-management facade used for staging data
// between storage backends (Compute-Unit input/output staging in
// RADICAL-Pilot, distribution downloads in SAGA-Hadoop).
type FileTransfer struct {
	eng *sim.Engine
}

// NewFileTransfer creates a transfer facade on the given engine.
func NewFileTransfer(e *sim.Engine) *FileTransfer {
	return &FileTransfer{eng: e}
}

// Copy moves bytes from src to dst, blocking p. Reading and writing are
// serialized (read fully, then write), which matches the staging behaviour
// of saga-python's file adaptor for local copies.
func (t *FileTransfer) Copy(p *sim.Proc, src, dst storage.Volume, bytes int64) error {
	if src == nil || dst == nil {
		return fmt.Errorf("saga: copy requires source and destination volumes")
	}
	if bytes < 0 {
		return fmt.Errorf("saga: negative transfer size %d", bytes)
	}
	src.Read(p, bytes)
	dst.Write(p, bytes)
	return nil
}

// PipelineChunk is the chunk size CopyPipelined reads and writes in.
// 64 MB keeps the per-chunk metadata overhead negligible while letting
// the source read of chunk i+1 overlap the destination write of chunk i.
const PipelineChunk int64 = 64 << 20

// pipelineBuffers is CopyPipelined's read-ahead window: the reader may
// run at most this many chunks ahead of the writer (double buffering),
// so a fast source does not drain instantly into an unbounded staging
// buffer when the destination is the slow side.
const pipelineBuffers = 2

// CopyPipelined moves bytes from src to dst in PipelineChunk pieces with
// the read and write sides overlapped: a reader process fills a
// double-buffered window of completed chunks while the caller drains it
// into dst. On distinct devices the transfer approaches the slower
// side's bandwidth instead of the serialized sum Copy pays; Pilot-Data
// staging runs over this path. Each chunk pays one per-operation
// latency on both volumes (an open per chunk, as a real chunked copier
// would).
func (t *FileTransfer) CopyPipelined(p *sim.Proc, src, dst storage.Volume, bytes int64) error {
	if src == nil || dst == nil {
		return fmt.Errorf("saga: copy requires source and destination volumes")
	}
	if bytes < 0 {
		return fmt.Errorf("saga: negative transfer size %d", bytes)
	}
	if bytes <= PipelineChunk {
		// A single chunk has nothing to overlap with.
		src.Read(p, bytes)
		dst.Write(p, bytes)
		return nil
	}
	ready := sim.NewQueue[int64](t.eng)
	credits := sim.NewQueue[struct{}](t.eng)
	for i := 0; i < pipelineBuffers; i++ {
		credits.Put(struct{}{})
	}
	t.eng.Spawn("saga:pipeline:read", func(rp *sim.Proc) {
		for remaining := bytes; remaining > 0; {
			credits.Get(rp) // backpressure: wait for a free buffer
			chunk := PipelineChunk
			if remaining < chunk {
				chunk = remaining
			}
			src.Read(rp, chunk)
			ready.Put(chunk)
			remaining -= chunk
		}
	})
	for written := int64(0); written < bytes; {
		chunk := ready.Get(p)
		dst.Write(p, chunk)
		credits.Put(struct{}{})
		written += chunk
	}
	return nil
}

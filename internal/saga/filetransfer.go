package saga

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/storage"
)

// FileTransfer is the SAGA file-management facade used for staging data
// between storage backends (Compute-Unit input/output staging in
// RADICAL-Pilot, distribution downloads in SAGA-Hadoop).
type FileTransfer struct {
	eng *sim.Engine
}

// NewFileTransfer creates a transfer facade on the given engine.
func NewFileTransfer(e *sim.Engine) *FileTransfer {
	return &FileTransfer{eng: e}
}

// Copy moves bytes from src to dst, blocking p. Reading and writing are
// serialized (read fully, then write), which matches the staging behaviour
// of saga-python's file adaptor for local copies.
func (t *FileTransfer) Copy(p *sim.Proc, src, dst storage.Volume, bytes int64) error {
	if src == nil || dst == nil {
		return fmt.Errorf("saga: copy requires source and destination volumes")
	}
	if bytes < 0 {
		return fmt.Errorf("saga: negative transfer size %d", bytes)
	}
	src.Read(p, bytes)
	dst.Write(p, bytes)
	return nil
}

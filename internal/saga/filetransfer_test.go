package saga

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

// xferPair builds two independent 200 MB/s disks on a fresh engine.
func xferPair(e *sim.Engine) (src, dst *storage.LocalDisk) {
	src = storage.NewLocalDisk(e, "src", 200e6, time.Millisecond)
	dst = storage.NewLocalDisk(e, "dst", 200e6, time.Millisecond)
	return src, dst
}

// TestCopyPipelinedMovesAllBytes: the pipelined path conserves bytes on
// both sides and rejects the same invalid arguments as Copy.
func TestCopyPipelinedMovesAllBytes(t *testing.T) {
	e := sim.NewEngine()
	defer e.Close()
	src, dst := xferPair(e)
	ft := NewFileTransfer(e)
	const bytes = 3*PipelineChunk + 12345 // deliberately unaligned
	e.Spawn("driver", func(p *sim.Proc) {
		if err := ft.CopyPipelined(p, nil, dst, 1); err == nil {
			t.Error("nil source accepted")
		}
		if err := ft.CopyPipelined(p, src, dst, -1); err == nil {
			t.Error("negative size accepted")
		}
		if err := ft.CopyPipelined(p, src, dst, bytes); err != nil {
			t.Error(err)
		}
	})
	e.Run()
	if got := src.Stats().BytesRead; got != bytes {
		t.Errorf("source read %d bytes, want %d", got, bytes)
	}
	if got := dst.Stats().BytesWrite; got != bytes {
		t.Errorf("destination wrote %d bytes, want %d", got, bytes)
	}
}

// TestCopyPipelinedOverlaps: on two independent equal-bandwidth disks the
// pipelined copy finishes in roughly half the serialized Copy time (the
// read of chunk i+1 overlaps the write of chunk i).
func TestCopyPipelinedOverlaps(t *testing.T) {
	const bytes = 16 * PipelineChunk
	elapsed := func(pipelined bool) sim.Duration {
		e := sim.NewEngine()
		defer e.Close()
		src, dst := xferPair(e)
		ft := NewFileTransfer(e)
		var d sim.Duration
		e.Spawn("driver", func(p *sim.Proc) {
			start := p.Now()
			var err error
			if pipelined {
				err = ft.CopyPipelined(p, src, dst, bytes)
			} else {
				err = ft.Copy(p, src, dst, bytes)
			}
			if err != nil {
				t.Error(err)
			}
			d = p.Now() - start
		})
		e.Run()
		return d
	}
	serial, overlapped := elapsed(false), elapsed(true)
	if overlapped >= serial {
		t.Fatalf("pipelined copy (%v) not faster than serialized copy (%v)", overlapped, serial)
	}
	if ratio := overlapped.Seconds() / serial.Seconds(); ratio > 0.65 {
		t.Fatalf("pipelined/serial ratio = %.2f, want ~0.5 on independent disks", ratio)
	}
}

// benchCopy runs one 1 GB transfer per iteration and reports the virtual
// time it costs as "sim-sec" — the flat micro-benchmark pair behind the
// staging pipeline optimization.
func benchCopy(b *testing.B, pipelined bool) {
	const bytes = 1 << 30
	var total float64
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		src, dst := xferPair(e)
		ft := NewFileTransfer(e)
		var d sim.Duration
		e.Spawn("bench", func(p *sim.Proc) {
			start := p.Now()
			var err error
			if pipelined {
				err = ft.CopyPipelined(p, src, dst, bytes)
			} else {
				err = ft.Copy(p, src, dst, bytes)
			}
			if err != nil {
				b.Error(err)
			}
			d = p.Now() - start
		})
		e.Run()
		e.Close()
		total += d.Seconds()
	}
	b.ReportMetric(total/float64(b.N), "sim-sec")
}

func BenchmarkFileTransferCopy(b *testing.B)          { benchCopy(b, false) }
func BenchmarkFileTransferCopyPipelined(b *testing.B) { benchCopy(b, true) }

package saga

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hpc"
	"repro/internal/sim"
	"repro/internal/storage"
)

func testBatch(e *sim.Engine) *hpc.Batch {
	m := cluster.New(e, cluster.MachineSpec{
		Name:      "tm",
		Nodes:     2,
		Node:      cluster.NodeSpec{Cores: 4, MemoryMB: 1024, DiskBW: 100e6, NICBW: 1e9},
		FabricBW:  2e9,
		Lustre:    storage.LustreSpec{AggregateBW: 1e9, MDSServers: 2},
		CPUFactor: 1,
	})
	return hpc.NewBatch(m, hpc.Config{
		SchedCycle:      10 * time.Second,
		DefaultWallTime: time.Hour,
		Seed:            1,
	})
}

func TestJobServiceSchemes(t *testing.T) {
	e := sim.NewEngine()
	b := testBatch(e)
	for _, scheme := range []string{"slurm", "pbs", "sge", "fork"} {
		js, err := NewJobService(scheme+"://host", b)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if js.Scheme() != scheme {
			t.Fatalf("scheme = %q, want %q", js.Scheme(), scheme)
		}
	}
	if _, err := NewJobService("nonsense://host", b); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := NewJobService("no-scheme", b); err == nil {
		t.Fatal("malformed URL accepted")
	}
	if _, err := NewJobService("slurm://host", nil); err == nil {
		t.Fatal("nil batch accepted")
	}
	e.Close()
}

func TestSubmitAndLifecycle(t *testing.T) {
	e := sim.NewEngine()
	b := testBatch(e)
	js, _ := NewJobService("slurm://tm", b)
	var finalState State
	var ranOn int
	e.Spawn("client", func(p *sim.Proc) {
		j, err := js.Submit(p, JobDescription{
			Executable: "/bin/agent",
			NumNodes:   2,
			WallTime:   time.Hour,
			Payload: func(pp *sim.Proc, a *hpc.Allocation) {
				ranOn = len(a.Nodes)
				pp.Sleep(30 * time.Second)
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if j.State() != Pending && j.State() != Running {
			t.Errorf("state right after submit = %v", j.State())
		}
		j.WaitStarted(p)
		if j.State() != Running {
			t.Errorf("state after start = %v, want Running", j.State())
		}
		finalState = j.Wait(p)
	})
	e.Run()
	e.Close()
	if finalState != Done {
		t.Fatalf("final state = %v, want Done", finalState)
	}
	if ranOn != 2 {
		t.Fatalf("payload saw %d nodes, want 2", ranOn)
	}
}

func TestSubmitValidatesDescription(t *testing.T) {
	e := sim.NewEngine()
	b := testBatch(e)
	js, _ := NewJobService("slurm://tm", b)
	e.Spawn("client", func(p *sim.Proc) {
		if _, err := js.Submit(p, JobDescription{Executable: "x"}); err == nil {
			t.Error("payload-less description accepted")
		}
		// Oversize request propagates the backend error.
		_, err := js.Submit(p, JobDescription{
			Executable: "x", NumNodes: 99,
			Payload: func(*sim.Proc, *hpc.Allocation) {},
		})
		if err == nil || !strings.Contains(err.Error(), "saga: submit") {
			t.Errorf("oversize submit error = %v", err)
		}
	})
	e.Run()
	e.Close()
}

func TestCancelThroughSAGA(t *testing.T) {
	e := sim.NewEngine()
	b := testBatch(e)
	js, _ := NewJobService("pbs://tm", b)
	var st State
	e.Spawn("client", func(p *sim.Proc) {
		j, _ := js.Submit(p, JobDescription{
			Executable: "sleeper", NumNodes: 1, WallTime: time.Hour,
			Payload: func(pp *sim.Proc, a *hpc.Allocation) { pp.Sleep(time.Hour) },
		})
		j.WaitStarted(p)
		p.Sleep(10 * time.Second)
		j.Cancel()
		st = j.Wait(p)
	})
	e.Run()
	e.Close()
	if st != Canceled {
		t.Fatalf("state = %v, want Canceled", st)
	}
}

func TestWalltimeMapsToFailed(t *testing.T) {
	e := sim.NewEngine()
	b := testBatch(e)
	js, _ := NewJobService("sge://tm", b)
	var st State
	e.Spawn("client", func(p *sim.Proc) {
		j, _ := js.Submit(p, JobDescription{
			Executable: "runaway", NumNodes: 1, WallTime: 20 * time.Second,
			Payload: func(pp *sim.Proc, a *hpc.Allocation) { pp.Sleep(time.Hour) },
		})
		st = j.Wait(p)
	})
	e.Run()
	e.Close()
	if st != Failed {
		t.Fatalf("state = %v, want Failed", st)
	}
}

func TestAdaptorRoundTripCosts(t *testing.T) {
	// The fork adaptor must submit faster than the batch adaptors.
	measure := func(scheme string) time.Duration {
		e := sim.NewEngine()
		b := testBatch(e)
		js, _ := NewJobService(scheme+"://tm", b)
		var submitted time.Duration
		e.Spawn("client", func(p *sim.Proc) {
			_, err := js.Submit(p, JobDescription{
				Executable: "x", NumNodes: 1,
				Payload: func(*sim.Proc, *hpc.Allocation) {},
			})
			if err != nil {
				t.Fatal(err)
			}
			submitted = p.Now()
		})
		e.Run()
		e.Close()
		return submitted
	}
	if fork, slurm := measure("fork"), measure("slurm"); fork >= slurm {
		t.Fatalf("fork submit (%v) should be faster than slurm (%v)", fork, slurm)
	}
}

func TestFileTransferCopy(t *testing.T) {
	e := sim.NewEngine()
	src := storage.NewLocalDisk(e, "src", 100e6, 0)
	dst := storage.NewLocalDisk(e, "dst", 50e6, 0)
	ft := NewFileTransfer(e)
	var done time.Duration
	e.Spawn("xfer", func(p *sim.Proc) {
		if err := ft.Copy(p, src, dst, 100e6); err != nil {
			t.Error(err)
		}
		done = p.Now()
	})
	e.Run()
	e.Close()
	// 1s read at 100 MB/s + 2s write at 50 MB/s.
	if done != 3*time.Second {
		t.Fatalf("copy took %v, want 3s", done)
	}
	if src.Stats().BytesRead != 100e6 || dst.Stats().BytesWrite != 100e6 {
		t.Fatal("byte accounting wrong")
	}
}

func TestFileTransferValidation(t *testing.T) {
	e := sim.NewEngine()
	d := storage.NewLocalDisk(e, "d", 1e6, 0)
	ft := NewFileTransfer(e)
	e.Spawn("x", func(p *sim.Proc) {
		if err := ft.Copy(p, nil, d, 10); err == nil {
			t.Error("nil src accepted")
		}
		if err := ft.Copy(p, d, d, -1); err == nil {
			t.Error("negative size accepted")
		}
	})
	e.Run()
	e.Close()
}

// Package saga implements a SAGA-like standardized access layer to
// heterogeneous resource managers (cf. Merzky et al., "SAGA: A
// standardized access layer", SoftwareX 2015). RADICAL-Pilot and
// SAGA-Hadoop use this interface to submit and control jobs without
// knowing whether the backend is SLURM, Torque, SGE, or a local fork —
// exactly the role SAGA plays in the paper's architecture (Figure 3,
// steps P.1–P.2).
//
// Backends are selected by URL, e.g. "slurm://stampede", "sge://wrangler"
// or "fork://localhost". All three batch adaptors map onto the same
// underlying hpc.Batch (as real SAGA adaptors map onto the site's
// scheduler); they differ in the submission round-trip cost and in the
// states they report, which is faithful to how the adaptors behave.
package saga

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/hpc"
	"repro/internal/sim"
)

// State is a SAGA job state.
type State string

// SAGA job model states.
const (
	New      State = "New"
	Pending  State = "Pending"
	Running  State = "Running"
	Done     State = "Done"
	Failed   State = "Failed"
	Canceled State = "Canceled"
)

// JobDescription mirrors the SAGA job description attributes used by
// RADICAL-Pilot: an executable plus resource requirements. The simulated
// executable body is supplied as Payload.
type JobDescription struct {
	Executable string
	Arguments  []string
	// NumNodes is the node count for batch backends (SPMD variation and
	// process counts are folded into the payload in this model).
	NumNodes int
	WallTime sim.Duration
	Queue    string
	// Project is the allocation charged, informational.
	Project string
	// Payload is the simulated body of the executable.
	Payload hpc.Payload
}

// Job is a SAGA job handle.
type Job struct {
	ID          string
	Description JobDescription

	backend *hpc.Job
	service *JobService
}

// State maps the backend state onto the SAGA state model.
func (j *Job) State() State {
	if j.backend == nil {
		return New
	}
	switch j.backend.State() {
	case hpc.StatePending:
		return Pending
	case hpc.StateRunning:
		return Running
	case hpc.StateCompleted:
		return Done
	case hpc.StateCancelled:
		return Canceled
	case hpc.StateTimedOut:
		return Failed
	default:
		return Failed
	}
}

// WaitStarted blocks p until the job leaves the queue.
func (j *Job) WaitStarted(p *sim.Proc) { p.Wait(j.backend.Started) }

// Wait blocks p until the job reaches a terminal state and returns it.
func (j *Job) Wait(p *sim.Proc) State {
	p.Wait(j.backend.Done)
	return j.State()
}

// Cancel terminates the job.
func (j *Job) Cancel() { j.service.batch.Cancel(j.backend) }

// Allocation exposes the backend allocation once running (nil before).
func (j *Job) Allocation() *hpc.Allocation { return j.backend.Allocation() }

// QueueWait reports the time spent queued.
func (j *Job) QueueWait() sim.Duration { return j.backend.QueueWait() }

// JobService is the SAGA job service: a submission endpoint bound to one
// resource manager.
type JobService struct {
	URL     string
	scheme  string
	host    string
	eng     *sim.Engine
	batch   *hpc.Batch
	rtt     sim.Duration
	nextJob int
}

// adaptorRTT is the per-operation round-trip cost of each adaptor. The
// values reflect that SLURM's REST-less CLI round trip is cheap, Torque
// and SGE slightly slower, and fork immediate.
var adaptorRTT = map[string]sim.Duration{
	"slurm": 300 * time.Millisecond,
	"pbs":   500 * time.Millisecond,
	"sge":   500 * time.Millisecond,
	"fork":  10 * time.Millisecond,
}

// NewJobService connects to the resource manager behind url. The batch
// argument is the machine's scheduler instance (the "remote side" of the
// adaptor). Supported schemes: slurm, pbs (Torque), sge, fork.
func NewJobService(url string, batch *hpc.Batch) (*JobService, error) {
	scheme, host, ok := strings.Cut(url, "://")
	if !ok {
		return nil, fmt.Errorf("saga: malformed resource URL %q", url)
	}
	rtt, ok := adaptorRTT[scheme]
	if !ok {
		return nil, fmt.Errorf("saga: no adaptor for scheme %q (have slurm, pbs, sge, fork)", scheme)
	}
	if batch == nil {
		return nil, fmt.Errorf("saga: job service %q needs a resource manager", url)
	}
	return &JobService{
		URL:    url,
		scheme: scheme,
		host:   host,
		eng:    batch.Machine().Engine,
		batch:  batch,
		rtt:    rtt,
	}, nil
}

// Submit translates the description to the backend and submits it,
// blocking p for the adaptor round trip.
func (s *JobService) Submit(p *sim.Proc, jd JobDescription) (*Job, error) {
	if jd.Payload == nil {
		return nil, fmt.Errorf("saga: job %q has no payload", jd.Executable)
	}
	if jd.NumNodes <= 0 {
		jd.NumNodes = 1
	}
	p.Sleep(s.rtt) // CLI/API round trip to the scheduler
	bj, err := s.batch.Submit(hpc.JobSpec{
		Name:     jd.Executable,
		Nodes:    jd.NumNodes,
		WallTime: jd.WallTime,
		Queue:    jd.Queue,
		Run:      jd.Payload,
	})
	if err != nil {
		return nil, fmt.Errorf("saga: submit via %s: %w", s.URL, err)
	}
	s.nextJob++
	return &Job{
		ID:          fmt.Sprintf("[%s]-[%d]", s.URL, s.nextJob),
		Description: jd,
		backend:     bj,
		service:     s,
	}, nil
}

// Scheme returns the adaptor scheme in use.
func (s *JobService) Scheme() string { return s.scheme }

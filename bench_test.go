package repro

// One benchmark per evaluation artifact: Figure 5 (main and inset),
// Figure 6 (per cell of the 1M-points scenario plus the full sweep), the
// speedup table, and the two ablations. Each iteration runs a complete,
// independent simulation; the interesting output is the simulated time,
// reported as the custom metric "sim-sec".

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/kmeans"
	"repro/internal/sim"
	"repro/pilot"
)

// BenchmarkFig5PilotStartup measures pilot (agent) startup per machine
// and system — the bars of Figure 5.
func BenchmarkFig5PilotStartup(b *testing.B) {
	cases := []struct {
		machine experiments.MachineName
		system  experiments.System
		mode    pilot.PilotMode
		mode2   bool
	}{
		{experiments.Stampede, experiments.RP, pilot.ModeHPC, false},
		{experiments.Stampede, experiments.RPYARN, pilot.ModeYARN, false},
		{experiments.Wrangler, experiments.RP, pilot.ModeHPC, false},
		{experiments.Wrangler, experiments.RPYARN, pilot.ModeYARN, false},
		{experiments.Wrangler, experiments.RPYARNModeII, pilot.ModeYARN, true},
	}
	for _, cse := range cases {
		name := fmt.Sprintf("%s/%s", cse.machine, cse.system)
		b.Run(name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				env, err := experiments.NewEnv(cse.machine, 3, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				var startup float64
				env.Eng.Spawn("driver", func(p *sim.Proc) {
					pm := pilot.NewPilotManager(env.Session)
					pl, err := pm.Submit(p, pilot.PilotDescription{
						Resource: string(cse.machine), Nodes: 1, Runtime: 2 * 3600e9,
						Mode: cse.mode, ConnectDedicated: cse.mode2,
					})
					if err != nil {
						b.Error(err)
						return
					}
					if !pl.WaitState(p, pilot.PilotActive) {
						b.Errorf("pilot ended %v", pl.State())
						return
					}
					startup = pl.AgentStartup().Seconds()
					pl.Cancel()
				})
				env.Eng.Run()
				env.Close()
				total += startup
			}
			b.ReportMetric(total/float64(b.N), "sim-sec")
		})
	}
}

// BenchmarkFig5UnitStartup measures Compute-Unit startup per system on
// Stampede — the Figure 5 inset.
func BenchmarkFig5UnitStartup(b *testing.B) {
	for _, cse := range []struct {
		system experiments.System
		mode   pilot.PilotMode
	}{
		{experiments.RP, pilot.ModeHPC},
		{experiments.RPYARN, pilot.ModeYARN},
	} {
		b.Run(string(cse.system), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				env, err := experiments.NewEnv(experiments.Stampede, 3, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				var startup float64
				env.Eng.Spawn("driver", func(p *sim.Proc) {
					pm := pilot.NewPilotManager(env.Session)
					pl, err := pm.Submit(p, pilot.PilotDescription{
						Resource: "stampede", Nodes: 1, Runtime: 2 * 3600e9, Mode: cse.mode,
					})
					if err != nil {
						b.Error(err)
						return
					}
					if !pl.WaitState(p, pilot.PilotActive) {
						b.Errorf("pilot ended %v", pl.State())
						return
					}
					um, err := pilot.NewUnitManager(env.Session)
					if err != nil {
						b.Error(err)
						return
					}
					um.AddPilot(pl)
					units, err := um.Submit(p, []pilot.ComputeUnitDescription{{Executable: "/bin/date"}})
					if err != nil {
						b.Error(err)
						return
					}
					um.WaitAll(p, units)
					startup = units[0].StartupTime().Seconds()
					pl.Cancel()
				})
				env.Eng.Run()
				env.Close()
				total += startup
			}
			b.ReportMetric(total/float64(b.N), "sim-sec")
		})
	}
}

// BenchmarkFig6KMeans measures K-Means time-to-completion for the
// 1M-points scenario across machines, task counts, and systems — the
// right-hand column of Figure 6 (the full figure is
// BenchmarkFig6FullSweep).
func BenchmarkFig6KMeans(b *testing.B) {
	scn := kmeans.PaperScenarios[2]
	for _, machine := range []experiments.MachineName{experiments.Stampede, experiments.Wrangler} {
		for _, tc := range kmeans.PaperTaskCounts {
			for _, cse := range []struct {
				system experiments.System
				mode   pilot.PilotMode
			}{
				{experiments.RP, pilot.ModeHPC},
				{experiments.RPYARN, pilot.ModeYARN},
			} {
				name := fmt.Sprintf("%s/%dtasks/%s", machine, tc.Tasks, cse.system)
				b.Run(name, func(b *testing.B) {
					var total float64
					for i := 0; i < b.N; i++ {
						env, err := experiments.NewEnv(machine, tc.Nodes+1, int64(i)+1)
						if err != nil {
							b.Fatal(err)
						}
						var runtime float64
						env.Eng.Spawn("driver", func(p *sim.Proc) {
							pm := pilot.NewPilotManager(env.Session)
							pl, err := pm.Submit(p, pilot.PilotDescription{
								Resource: string(machine), Nodes: tc.Nodes,
								Runtime: 6 * 3600e9, Mode: cse.mode,
							})
							if err != nil {
								b.Error(err)
								return
							}
							if !pl.WaitState(p, pilot.PilotActive) {
								b.Errorf("pilot ended %v", pl.State())
								return
							}
							um, err := pilot.NewUnitManager(env.Session)
							if err != nil {
								b.Error(err)
								return
							}
							um.AddPilot(pl)
							res, err := kmeans.RunWorkload(p, um, scn, tc.Tasks, kmeans.DefaultCostModel(), sim.NewRNG(int64(i)))
							if err != nil {
								b.Error(err)
								return
							}
							runtime = (res.Makespan + pl.HadoopSpawnTime).Seconds()
							pl.Cancel()
						})
						env.Eng.Run()
						env.Close()
						total += runtime
					}
					b.ReportMetric(total/float64(b.N), "sim-sec")
				})
			}
		}
	}
}

// BenchmarkFig6FullSweep regenerates the entire Figure 6 (all scenarios,
// machines, task counts and systems) per iteration, as cmd/repro does.
func BenchmarkFig6FullSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(int64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpeedupTable regenerates the Section IV-B speedup numbers.
func BenchmarkSpeedupTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Speedups()) == 0 {
			b.Fatal("no speedups computed")
		}
	}
}

// BenchmarkAblationShuffle regenerates Ablation A (shuffle storage
// target).
func BenchmarkAblationShuffle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunShuffleAblation(int64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAMReuse regenerates Ablation B (Application Master
// reuse).
func BenchmarkAblationAMReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAMReuseAblation(int64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResize measures the resize hot path: a grow/shrink cycle on
// an active HPC pilot — batch round trip, chunk integration into the
// agent scheduler, drain, release. Each iteration runs a fresh
// simulation performing resizeCycles cycles; "sim-sec" is the virtual
// time one cycle costs.
func BenchmarkResize(b *testing.B) {
	const resizeCycles = 8
	var total float64
	for i := 0; i < b.N; i++ {
		env, err := experiments.NewEnv(experiments.Stampede, 8, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		var cycles float64
		env.Eng.Spawn("driver", func(p *sim.Proc) {
			pm := pilot.NewPilotManager(env.Session)
			pl, err := pm.Submit(p, pilot.PilotDescription{
				Resource: "stampede", Nodes: 2, Runtime: 4 * 3600e9, Mode: pilot.ModeHPC,
			})
			if err != nil {
				b.Error(err)
				return
			}
			if !pl.WaitState(p, pilot.PilotActive) {
				b.Errorf("pilot ended %v", pl.State())
				return
			}
			start := p.Now()
			for c := 0; c < resizeCycles; c++ {
				if err := pl.Resize(p, 1); err != nil {
					b.Error(err)
					return
				}
				if err := pl.Resize(p, -1); err != nil {
					b.Error(err)
					return
				}
			}
			cycles = (p.Now() - start).Seconds() / resizeCycles
			pl.Cancel()
		})
		env.Eng.Run()
		env.Close()
		total += cycles
	}
	b.ReportMetric(total/float64(b.N), "sim-sec")
}

// BenchmarkElasticComparison regenerates the cluster-extension scenario
// (static vs autoscaled pilots on a bursty workload), reporting the
// static-to-best-autoscaled makespan gain as "speedup".
func BenchmarkElasticComparison(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunElasticComparison(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		var static, best *experiments.ElasticRow
		for _, r := range rows {
			if r.Policy == experiments.ElasticStatic {
				static = r
			} else if best == nil || r.Makespan < best.Makespan {
				best = r
			}
		}
		if static == nil || best == nil {
			b.Fatal("comparison missing rows")
		}
		speedup += static.Makespan.Seconds() / best.Makespan.Seconds()
	}
	b.ReportMetric(speedup/float64(b.N), "speedup")
}

// BenchmarkSchedulerComparison regenerates the unit-scheduler comparison
// (heterogeneous two-pilot workloads, all built-in policies), reporting
// the round-robin-to-backfill makespan gain on the burst workload as
// "speedup".
func BenchmarkSchedulerComparison(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunSchedulerComparison(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		byPolicy := make(map[string]*experiments.SchedRow)
		for _, r := range rows {
			if r.Workload == experiments.WorkloadBurst {
				byPolicy[r.Policy] = r
			}
		}
		rr, bf := byPolicy[pilot.SchedulerRoundRobin], byPolicy[pilot.SchedulerBackfill]
		if rr == nil || bf == nil {
			b.Fatal("comparison missing policies")
		}
		speedup += rr.Makespan.Seconds() / bf.Makespan.Seconds()
	}
	b.ReportMetric(speedup/float64(b.N), "speedup")
}

// BenchmarkDataElasticComparison regenerates the data-aware autoscaling
// scenario (queue-depth vs data-aware on the data-skewed workload),
// reporting the queue-depth-to-data-aware makespan gain as "speedup"
// and the node-seconds saved as "node-sec-saved".
func BenchmarkDataElasticComparison(b *testing.B) {
	var speedup, saved float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunDataElasticComparison(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		var qd, da *experiments.DataElasticRow
		for _, r := range rows {
			switch r.Policy {
			case experiments.DataElasticQueueDepth:
				qd = r
			case experiments.DataElasticDataAware:
				da = r
			}
		}
		if qd == nil || da == nil {
			b.Fatal("comparison missing rows")
		}
		speedup += qd.Makespan.Seconds() / da.Makespan.Seconds()
		saved += qd.NodeSeconds - da.NodeSeconds
	}
	b.ReportMetric(speedup/float64(b.N), "speedup")
	b.ReportMetric(saved/float64(b.N), "node-sec-saved")
}

// BenchmarkStagingComparison regenerates the Pilot-Data staging
// scenario (remote Lustre staging vs co-located per-pilot stores on the
// shuffle-heavy K-Means workload), reporting the remote-to-co-located
// makespan gain as "speedup" and the staging throughput of the initial
// co-located distribution as "stage-MBps".
func BenchmarkStagingComparison(b *testing.B) {
	var speedup, throughput float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunStagingComparison(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		var remote, co *experiments.StagingRow
		for _, r := range rows {
			switch r.Mode {
			case experiments.StagingRemote:
				remote = r
			case experiments.StagingCoLocated:
				co = r
			}
		}
		if remote == nil || co == nil {
			b.Fatal("comparison missing rows")
		}
		speedup += remote.Makespan.Seconds() / co.Makespan.Seconds()
		throughput += float64(experiments.StagingBytesDistributed()) / co.StageIn.Seconds() / 1e6
	}
	b.ReportMetric(speedup/float64(b.N), "speedup")
	b.ReportMetric(throughput/float64(b.N), "stage-MBps")
}

// BenchmarkUnitGraph runs the cmd/repro dag comparison — the skewed
// map → shuffle → reduce UnitGraph under critical-path and FIFO
// ordering — and reports the critical-path cell's simulated makespan
// plus the makespan speedup over FIFO.
func BenchmarkUnitGraph(b *testing.B) {
	var simSec, speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunDAGComparison(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		cp, fifo := rows[0], rows[1]
		simSec += cp.Makespan.Seconds()
		speedup += fifo.Makespan.Seconds() / cp.Makespan.Seconds()
	}
	b.ReportMetric(simSec/float64(b.N), "sim-sec")
	b.ReportMetric(speedup/float64(b.N), "speedup")
}

// BenchmarkUnitGraphAdmission measures the graph-admission cost alone —
// edge wiring, cycle detection and critical-path computation over a
// 512-unit layered DAG — the wall-clock price paid once per Submit.
func BenchmarkUnitGraphAdmission(b *testing.B) {
	const layers, width = 16, 32
	eng := sim.NewEngine()
	defer eng.Close()
	session := pilot.NewSession(eng, pilot.WithSeed(1))
	dm := pilot.NewDataManager(session)
	outs := make([][]*pilot.DataUnit, layers)
	for l := 0; l < layers; l++ {
		outs[l] = make([]*pilot.DataUnit, width)
		for w := 0; w < width; w++ {
			du, err := dm.Declare(pilot.DataUnitDescription{
				Name: fmt.Sprintf("/bench/l%02d-w%02d", l, w), SizeBytes: 1 << 20,
			})
			if err != nil {
				b.Fatal(err)
			}
			outs[l][w] = du
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := pilot.NewUnitGraph()
		for l := 0; l < layers; l++ {
			for w := 0; w < width; w++ {
				desc := pilot.ComputeUnitDescription{
					Name:    fmt.Sprintf("u-l%02d-w%02d", l, w),
					Outputs: []pilot.DataRef{{Unit: outs[l][w]}},
				}
				if l > 0 {
					desc.Inputs = []pilot.DataRef{
						{Unit: outs[l-1][w]},
						{Unit: outs[l-1][(w+1)%width]},
					}
				}
				if _, err := g.Add(desc); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := g.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnitKey measures the content-address digest over a
// realistically sized description (8 inputs, 2 outputs) — the price the
// result cache adds to every Submit.
func BenchmarkUnitKey(b *testing.B) {
	eng := sim.NewEngine()
	defer eng.Close()
	session := pilot.NewSession(eng, pilot.WithSeed(1))
	dm := pilot.NewDataManager(session)
	desc := pilot.ComputeUnitDescription{
		Executable: "/bin/derive",
		Arguments:  []string{"--mode=full", "--passes=3", "--out-format=parquet"},
	}
	for i := 0; i < 8; i++ {
		du, err := dm.Declare(pilot.DataUnitDescription{
			Name: fmt.Sprintf("/bench/key-in-%d", i), SizeBytes: 64 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		desc.Inputs = append(desc.Inputs, pilot.DataRef{Unit: du})
	}
	for i := 0; i < 2; i++ {
		du, err := dm.Declare(pilot.DataUnitDescription{
			Name: fmt.Sprintf("/bench/key-out-%d", i), SizeBytes: 16 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		desc.Outputs = append(desc.Outputs, pilot.DataRef{Unit: du})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pilot.UnitKey(desc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResultCache runs the cmd/repro cache comparison — the
// redundant multi-user workload with and without WithResultCache — and
// reports the cached cell's simulated makespan plus the makespan
// speedup over the uncached cell.
func BenchmarkResultCache(b *testing.B) {
	var simSec, speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunCacheComparison(int64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		un, ca := rows[0], rows[1]
		simSec += ca.Makespan.Seconds()
		speedup += un.Makespan.Seconds() / ca.Makespan.Seconds()
	}
	b.ReportMetric(simSec/float64(b.N), "sim-sec")
	b.ReportMetric(speedup/float64(b.N), "speedup")
}

// BenchmarkScaleSweep runs the engine-speed sweep at its small and
// medium tiers (the 10⁴ tier is the offline BENCH_scale.json run) and
// reports the medium tier's throughput as "units/sec" plus its bind
// loop rescan amplification as "offers/unit".
func BenchmarkScaleSweep(b *testing.B) {
	var unitsPerSec, offersPerUnit float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunScaleSweep(int64(i)+1, []int{100, 1000})
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckScaleSweep(rows, []int{100, 1000}); err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		unitsPerSec += last.UnitsPerSec
		offersPerUnit += float64(last.Offered) / float64(last.Units)
	}
	b.ReportMetric(unitsPerSec/float64(b.N), "units/sec")
	b.ReportMetric(offersPerUnit/float64(b.N), "offers/unit")
}

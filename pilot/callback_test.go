package pilot_test

import (
	"slices"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/pilot"
)

func TestPilotStateCallbacks(t *testing.T) {
	e := newTestEnv(t, 1)
	var seen []pilot.PilotState
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 1, Runtime: time.Hour,
		})
		if err != nil {
			t.Error(err)
			return
		}
		pl.OnStateChange(func(_ *pilot.Pilot, st pilot.PilotState) {
			seen = append(seen, st)
		})
		pl.WaitState(p, pilot.PilotActive)
		pl.Cancel()
		pl.Wait(p)
	})
	if !slices.IsSorted(seen) {
		t.Fatalf("callback states out of order: %v", seen)
	}
	for _, want := range []pilot.PilotState{pilot.PilotAgentStarting, pilot.PilotActive, pilot.PilotCanceled} {
		if !slices.Contains(seen, want) {
			t.Fatalf("callbacks %v missing %v", seen, want)
		}
	}
}

func TestUnitStateCallbacksAndWaitersOnSuccess(t *testing.T) {
	e := newTestEnv(t, 1)
	var seen []pilot.UnitState
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, _ := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 1, Runtime: time.Hour,
		})
		pl.WaitState(p, pilot.PilotActive)
		um := newUM(t, e.session)
		um.AddPilot(pl)
		units, err := um.Submit(p, []pilot.ComputeUnitDescription{{
			Body: func(bp *sim.Proc, ctx *pilot.UnitContext) { bp.Sleep(time.Second) },
		}})
		if err != nil {
			t.Error(err)
			return
		}
		units[0].OnStateChange(func(_ *pilot.Unit, st pilot.UnitState) {
			seen = append(seen, st)
		})
		um.WaitAll(p, units)
		pl.Cancel()
	})
	if !slices.IsSorted(seen) {
		t.Fatalf("callback states out of order: %v", seen)
	}
	for _, want := range []pilot.UnitState{pilot.UnitExecuting, pilot.UnitDone} {
		if !slices.Contains(seen, want) {
			t.Fatalf("callbacks %v missing %v", seen, want)
		}
	}
	for _, never := range []pilot.UnitState{pilot.UnitCanceled, pilot.UnitFailed} {
		if slices.Contains(seen, never) {
			t.Fatalf("callbacks %v contain %v on a successful unit", seen, never)
		}
	}
}

// TestUnitFailureSkipsStateCallbacksButWakesWaiters covers the failure
// path: a unit that can never be scheduled fails in agent scheduling.
// Callbacks must not fire for the skipped states (staging, executing,
// done), while waiters parked in Wait before the failure are still
// woken.
func TestUnitFailureSkipsStateCallbacksButWakesWaiters(t *testing.T) {
	e := newTestEnv(t, 1)
	var seen []pilot.UnitState
	waiterWoken := false
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, _ := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 1, Runtime: time.Hour,
		})
		pl.WaitState(p, pilot.PilotActive)
		um := newUM(t, e.session)
		um.AddPilot(pl)
		// 999 cores can never fit the 8-core node: Acquire fails fast.
		units, err := um.Submit(p, []pilot.ComputeUnitDescription{{Cores: 999}})
		if err != nil {
			t.Error(err)
			return
		}
		u := units[0]
		u.OnStateChange(func(_ *pilot.Unit, st pilot.UnitState) {
			seen = append(seen, st)
		})
		// Park a second process in Wait before the failure lands.
		e.session.Engine().Spawn("waiter", func(wp *sim.Proc) {
			u.Wait(wp)
			waiterWoken = true
		})
		if st := u.Wait(p); st != pilot.UnitFailed {
			t.Errorf("unit = %v, want FAILED", st)
		}
		if u.Err == nil {
			t.Error("failed unit has no cause")
		}
		pl.Cancel()
	})
	if !waiterWoken {
		t.Fatal("parked waiter never woken by fail()")
	}
	if !slices.Contains(seen, pilot.UnitFailed) {
		t.Fatalf("callbacks %v missing UnitFailed", seen)
	}
	for _, skipped := range []pilot.UnitState{
		pilot.UnitStagingInput, pilot.UnitExecuting,
		pilot.UnitStagingOutput, pilot.UnitDone, pilot.UnitCanceled,
	} {
		if slices.Contains(seen, skipped) {
			t.Fatalf("callback fired for skipped state %v (seen %v)", skipped, seen)
		}
	}
}

// TestUnitCancelWakesParkedWaiters covers cancel(): units running when
// the pilot is cancelled move to CANCELED and wake their waiters.
func TestUnitCancelWakesParkedWaiters(t *testing.T) {
	e := newTestEnv(t, 1)
	var st pilot.UnitState
	var seen []pilot.UnitState
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, _ := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 1, Runtime: time.Hour,
		})
		pl.WaitState(p, pilot.PilotActive)
		um := newUM(t, e.session)
		um.AddPilot(pl)
		units, _ := um.Submit(p, []pilot.ComputeUnitDescription{{
			Body: func(bp *sim.Proc, ctx *pilot.UnitContext) { bp.Sleep(time.Hour) },
		}})
		units[0].OnStateChange(func(_ *pilot.Unit, s pilot.UnitState) {
			seen = append(seen, s)
		})
		p.Sleep(30 * time.Second) // let the unit reach EXECUTING
		pl.Cancel()
		st = units[0].Wait(p)
	})
	if st != pilot.UnitCanceled {
		t.Fatalf("unit state = %v, want CANCELED", st)
	}
	if slices.Contains(seen, pilot.UnitDone) || slices.Contains(seen, pilot.UnitFailed) {
		t.Fatalf("cancelled unit reported wrong final state: %v", seen)
	}
	if !slices.Contains(seen, pilot.UnitCanceled) {
		t.Fatalf("callbacks %v missing UnitCanceled", seen)
	}
}

// TestLateSubscriberSeesCurrentState: registering a callback after a
// final state fires immediately with the current state, so reactive
// code cannot deadlock on an already-finished entity.
func TestLateSubscriberSeesCurrentState(t *testing.T) {
	e := newTestEnv(t, 1)
	var late []pilot.PilotState
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, _ := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 1, Runtime: time.Hour,
		})
		pl.WaitState(p, pilot.PilotActive)
		pl.Cancel()
		pl.Wait(p)
		pl.OnStateChange(func(_ *pilot.Pilot, st pilot.PilotState) {
			late = append(late, st)
		})
		// Waiting on an already-final pilot must return immediately too.
		if st := pl.Wait(p); st != pilot.PilotCanceled {
			t.Errorf("re-Wait = %v", st)
		}
	})
	if len(late) != 1 || late[0] != pilot.PilotCanceled {
		t.Fatalf("late subscriber saw %v, want exactly [CANCELED]", late)
	}
}

// TestWalltimeFailureReleasesWaitState: a pilot that dies before
// becoming active must release WaitState(PilotActive) with reached ==
// false, and its callbacks must report FAILED but never ACTIVE.
func TestWalltimeFailureReleasesWaitState(t *testing.T) {
	// An agent bootstrap far longer than the walltime: the job is
	// killed before PilotActive can be reached.
	slow := fastProfile()
	slow.AgentSetup = 10 * time.Minute
	e := newTestEnvProfile(t, 1, slow)
	var seen []pilot.PilotState
	reached := true
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 1, Runtime: 2 * time.Minute,
		})
		if err != nil {
			t.Error(err)
			return
		}
		pl.OnStateChange(func(_ *pilot.Pilot, st pilot.PilotState) {
			seen = append(seen, st)
		})
		reached = pl.WaitState(p, pilot.PilotActive)
	})
	if reached {
		t.Fatal("WaitState(PilotActive) reported reached on a failed pilot")
	}
	if !slices.Contains(seen, pilot.PilotFailed) {
		t.Fatalf("callbacks %v missing PilotFailed", seen)
	}
	if slices.Contains(seen, pilot.PilotActive) {
		t.Fatalf("callback fired for skipped PilotActive: %v", seen)
	}
}

package pilot_test

import (
	"fmt"
	"slices"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/pilot"
)

// toyBackend is a minimal fourth execution backend registered through
// the public API — the acceptance check that new runtimes plug in
// without modifying any core file. It "boots" instantly and runs units
// directly on the allocation's first node with a node-local sandbox.
type toyBackend struct {
	booted   bool
	launched int
	tornDown bool
}

func (b *toyBackend) Name() string { return "toy" }

func (b *toyBackend) Validate(d pilot.PilotDescription, _ *pilot.Resource) error {
	if d.ConnectDedicated {
		return fmt.Errorf("toy: ConnectDedicated unsupported")
	}
	return nil
}

func (b *toyBackend) Bootstrap(p *sim.Proc, bc *pilot.BackendContext) (pilot.AgentScheduler, error) {
	p.Sleep(bc.Jitter(time.Second))
	b.booted = true
	return pilot.NewPoolScheduler(bc.Session.Engine(), 16), nil
}

func (b *toyBackend) LaunchUnit(p *sim.Proc, bc *pilot.BackendContext, u *pilot.Unit, _ *pilot.Slot) error {
	node := bc.Alloc.Nodes[0]
	p.Sleep(100 * time.Millisecond)
	bc.RunUnitBody(p, u, node, node.Disk)
	b.launched++
	return nil
}

func (b *toyBackend) Teardown(*pilot.BackendContext) { b.tornDown = true }

// lastToy captures the instance Submit created so the test can inspect
// it after the run.
var lastToy *toyBackend

func registerToy(t *testing.T) {
	t.Helper()
	err := pilot.RegisterBackend("toy", func() pilot.Backend {
		lastToy = &toyBackend{}
		return lastToy
	})
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
}

func TestToyBackendRunsUnits(t *testing.T) {
	registerToy(t)
	if !slices.Contains(pilot.Backends(), "toy") {
		t.Fatalf("registry %v missing toy backend", pilot.Backends())
	}
	e := newTestEnv(t, 2)
	var sandbox string
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 2, Runtime: time.Hour, Mode: "toy",
		})
		if err != nil {
			t.Error(err)
			return
		}
		if !pl.WaitState(p, pilot.PilotActive) {
			t.Errorf("toy pilot never active: %v", pl.State())
			return
		}
		um := newUM(t, e.session)
		um.AddPilot(pl)
		units, err := um.Submit(p, []pilot.ComputeUnitDescription{{
			Executable: "/bin/toy",
			Body: func(bp *sim.Proc, ctx *pilot.UnitContext) {
				sandbox = ctx.Sandbox.Name()
			},
		}})
		if err != nil {
			t.Error(err)
			return
		}
		um.WaitAll(p, units)
		if units[0].State() != pilot.UnitDone {
			t.Errorf("unit %v (%v)", units[0].State(), units[0].Err)
		}
		pl.Cancel()
	})
	if lastToy == nil || !lastToy.booted || lastToy.launched != 1 {
		t.Fatalf("toy backend not driven: %+v", lastToy)
	}
	if !lastToy.tornDown {
		t.Fatalf("toy backend not torn down on cancel")
	}
	if !strings.Contains(sandbox, "disk") {
		t.Fatalf("toy sandbox = %q, want node-local disk", sandbox)
	}
}

func TestDuplicateBackendRegistrationRejected(t *testing.T) {
	registerToy(t)
	err := pilot.RegisterBackend("toy", func() pilot.Backend { return &toyBackend{} })
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration accepted (err=%v)", err)
	}
	if err := pilot.RegisterBackend("nil-factory", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := pilot.RegisterBackend("", func() pilot.Backend { return &toyBackend{} }); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestUnknownBackendAtSubmit(t *testing.T) {
	e := newTestEnv(t, 1)
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		_, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 1, Runtime: time.Hour, Mode: "no-such-runtime",
		})
		if err == nil {
			t.Error("unknown backend accepted at Submit")
			return
		}
		// The error should teach the caller what is available.
		if !strings.Contains(err.Error(), "hpc") || !strings.Contains(err.Error(), "yarn") {
			t.Errorf("error does not list registered backends: %v", err)
		}
	})
}

// TestYARNOnlyFieldsRejectedForCustomBackend: the core guard must
// reject YARN-only description fields for every non-YARN backend, so a
// custom backend that forgets to validate them cannot silently ignore
// them.
func TestYARNOnlyFieldsRejectedForCustomBackend(t *testing.T) {
	registerToy(t)
	e := newTestEnv(t, 1)
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		if _, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 1, Runtime: time.Hour, Mode: "toy", ReuseAM: true,
		}); err == nil {
			t.Error("ReuseAM accepted by a non-YARN custom backend")
		}
	})
}

func TestBuiltinBackendsRegistered(t *testing.T) {
	names := pilot.Backends()
	for _, want := range []string{"hpc", "yarn", "spark"} {
		if !slices.Contains(names, want) {
			t.Fatalf("registry %v missing built-in %q", names, want)
		}
	}
}

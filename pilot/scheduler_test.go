package pilot_test

import (
	"errors"
	"slices"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/pilot"
)

// firstPilotScheduler is the toy fifth policy of the acceptance
// criteria: registered through the public API, it always binds to the
// first live candidate — no internal/core changes required.
type firstPilotScheduler struct{}

func (firstPilotScheduler) Name() string { return "toy-first" }

func (firstPilotScheduler) Pick(_ *sim.Proc, _ *pilot.Unit, cands []*pilot.Candidate) (*pilot.Pilot, error) {
	return cands[0].Pilot, nil
}

func registerToyPolicy(t *testing.T) {
	t.Helper()
	err := pilot.RegisterUnitScheduler("toy-first", func() pilot.UnitScheduler {
		return firstPilotScheduler{}
	})
	// Another test in this binary may have registered it already; only a
	// genuinely new failure mode is fatal.
	if err != nil && !slices.Contains(pilot.UnitSchedulers(), "toy-first") {
		t.Fatal(err)
	}
}

func TestRegisterUnitSchedulerToyPolicy(t *testing.T) {
	registerToyPolicy(t)
	if !slices.Contains(pilot.UnitSchedulers(), "toy-first") {
		t.Fatalf("UnitSchedulers() = %v, missing toy-first", pilot.UnitSchedulers())
	}
	// Registry hygiene through the public API.
	if err := pilot.RegisterUnitScheduler("toy-first", func() pilot.UnitScheduler { return firstPilotScheduler{} }); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := pilot.RegisterUnitScheduler("", func() pilot.UnitScheduler { return firstPilotScheduler{} }); err == nil {
		t.Error("empty name accepted")
	}
	if err := pilot.RegisterUnitScheduler("nil-factory", nil); err == nil {
		t.Error("nil factory accepted")
	}

	// The toy policy drives a real workload: every unit lands on the
	// first pilot added, even with a second idle pilot available.
	e := newTestEnv(t, 4)
	counts := make(map[string]int)
	var firstID string
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		var pilots []*pilot.Pilot
		for i := 0; i < 2; i++ {
			pl, err := pm.Submit(p, pilot.PilotDescription{
				Resource: "tm", Nodes: 2, Runtime: time.Hour,
			})
			if err != nil {
				t.Error(err)
				return
			}
			pilots = append(pilots, pl)
		}
		firstID = pilots[0].ID
		um := newUM(t, e.session, pilot.WithScheduler("toy-first"))
		for _, pl := range pilots {
			pl.WaitState(p, pilot.PilotActive)
			um.AddPilot(pl)
		}
		if got := um.Scheduler(); got != "toy-first" {
			t.Errorf("um.Scheduler() = %q", got)
		}
		var descs []pilot.ComputeUnitDescription
		for i := 0; i < 6; i++ {
			descs = append(descs, pilot.ComputeUnitDescription{
				Body: func(bp *sim.Proc, ctx *pilot.UnitContext) { bp.Sleep(time.Second) },
			})
		}
		units, err := um.Submit(p, descs)
		if err != nil {
			t.Error(err)
			return
		}
		um.WaitAll(p, units)
		for _, u := range units {
			if u.State() != pilot.UnitDone {
				t.Errorf("unit %s = %v (%v)", u.ID, u.State(), u.Err)
			}
			counts[u.Pilot.ID]++
		}
		for _, pl := range pilots {
			pl.Cancel()
		}
	})
	if len(counts) != 1 || counts[firstID] != 6 {
		t.Fatalf("toy-first spread units as %v, want all 6 on %s", counts, firstID)
	}
}

// TestWithSchedulerUnknownName: selecting an unregistered policy fails
// with the matchable sentinel, through the public API.
func TestWithSchedulerUnknownName(t *testing.T) {
	e := newTestEnv(t, 1)
	defer e.eng.Close()
	if _, err := pilot.NewUnitManager(e.session, pilot.WithScheduler("no-such-policy")); !errors.Is(err, pilot.ErrUnknownScheduler) {
		t.Fatalf("err = %v, want pilot.ErrUnknownScheduler", err)
	}
}

// TestBuiltinSchedulersListed pins the public registry contents.
func TestBuiltinSchedulersListed(t *testing.T) {
	names := pilot.UnitSchedulers()
	for _, want := range []string{
		pilot.SchedulerRoundRobin, pilot.SchedulerLeastLoaded,
		pilot.SchedulerBackfill, pilot.SchedulerLocality,
	} {
		if !slices.Contains(names, want) {
			t.Errorf("UnitSchedulers() = %v, missing %q", names, want)
		}
	}
}

// TestSubmitNoPilotsSentinel: the public API surfaces ErrNoPilots.
func TestSubmitNoPilotsSentinel(t *testing.T) {
	e := newTestEnv(t, 1)
	um := newUM(t, e.session)
	e.run(t, func(p *sim.Proc) {
		if _, err := um.Submit(p, []pilot.ComputeUnitDescription{{}}); !errors.Is(err, pilot.ErrNoPilots) {
			t.Errorf("Submit with no pilots = %v, want pilot.ErrNoPilots", err)
		}
	})
}

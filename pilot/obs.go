package pilot

import (
	"io"

	"repro/internal/obs"
	"repro/internal/sim"
)

// The flight-recorder types, re-exported as the public observability
// API. A Recorder attaches to a session with WithRecorder (or
// Session.AttachRecorder) and captures typed events at virtual time;
// see the package documentation's Observability section.
type (
	// Recorder captures typed events and live-gauge samples from every
	// manager of the session it is attached to.
	Recorder = obs.Recorder
	// TraceEvent is one recorded observation; EventKind classifies it.
	TraceEvent = obs.Event
	// EventKind classifies a TraceEvent.
	EventKind = obs.Kind
	// Series is the recorder's gauge time series, exportable as JSONL.
	Series = obs.Series
	// GaugeSample is one ClusterView reading in a Series.
	GaugeSample = obs.GaugeSample
	// TraceCell labels one event stream in a multi-cell Chrome trace.
	TraceCell = obs.Cell
)

// The event kinds a Recorder captures.
const (
	EventUnitState  = obs.KindUnitState
	EventPilotState = obs.KindPilotState
	EventDataState  = obs.KindDataState
	EventBind       = obs.KindBind
	EventHold       = obs.KindHold
	EventRelease    = obs.KindRelease
	EventAutoscale  = obs.KindAutoscale
	EventCache      = obs.KindCache
	EventReplica    = obs.KindReplica
	EventStoreFail  = obs.KindStoreFail
	EventGraphAdmit = obs.KindGraphAdmit
	EventTrace      = obs.KindTrace
)

// NewRecorder creates a flight recorder stamping events with eng's
// virtual clock and folding the engine's Tracef lines into the same
// timeline. Attach it with WithRecorder.
func NewRecorder(eng *sim.Engine) *Recorder { return obs.NewRecorder(eng) }

// WriteChromeTrace renders a recorder's event stream as a Chrome
// trace-event JSON file viewable in Perfetto (ui.perfetto.dev): one
// span per DONE unit on its pilot's track, instants for binds,
// autoscale verdicts, cache traffic and store failures.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// WriteChromeTraceCells is WriteChromeTrace over several labeled cells
// in one file, each on its own process-ID range.
func WriteChromeTraceCells(w io.Writer, cells []TraceCell) error {
	return obs.WriteChromeTraceCells(w, cells)
}

// VerifyBinds checks the scheduler's recorder invariants on a
// failure-free run: every executed DONE unit bound exactly once, every
// cache-completed unit never bound.
func VerifyBinds(events []TraceEvent) error { return obs.VerifyBinds(events) }

// DoneUnits counts the distinct units whose event stream reached DONE —
// the span count WriteChromeTrace emits.
func DoneUnits(events []TraceEvent) int { return obs.DoneUnits(events) }

package pilot_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hpc"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/pilot"
)

// testEnv is a self-contained simulated machine with a session, built
// entirely through the public API surface.
type testEnv struct {
	eng     *sim.Engine
	machine *cluster.Machine
	session *pilot.Session
}

func testSpec(nodes int) cluster.MachineSpec {
	return cluster.MachineSpec{
		Name:  "tm",
		Nodes: nodes,
		Node: cluster.NodeSpec{
			Cores: 8, MemoryMB: 32 * 1024, DiskBW: 200e6,
			DiskOpLatency: time.Millisecond, NICBW: 1e9,
		},
		FabricBW: 10e9,
		Lustre: storage.LustreSpec{
			AggregateBW: 2e9, MDSServers: 4,
			MDSServiceTime: 2 * time.Millisecond, ClientLatency: 3 * time.Millisecond,
		},
		CPUFactor:  1,
		ExternalBW: 100e6,
	}
}

// fastProfile shrinks bootstrap costs so lifecycle tests stay quick.
func fastProfile() pilot.BootstrapProfile {
	p := pilot.DefaultProfile()
	p.AgentSetup = 2 * time.Second
	p.AgentVenvOps = 50
	p.AgentComponents = time.Second
	p.HadoopUnpackOps = 50
	p.HadoopDownloadBytes = 50 << 20
	p.UnitWrapperOps = 20
	p.UnitWrapperSetup = 2 * time.Second
	p.Jitter = 0
	return p
}

func newTestEnv(t *testing.T, nodes int) *testEnv {
	return newTestEnvProfile(t, nodes, fastProfile())
}

func newTestEnvProfile(t *testing.T, nodes int, prof pilot.BootstrapProfile) *testEnv {
	t.Helper()
	eng := sim.NewEngine()
	m := cluster.New(eng, testSpec(nodes))
	b := hpc.NewBatch(m, hpc.Config{
		SchedCycle:      10 * time.Second,
		Prolog:          2 * time.Second,
		MinQueueWait:    time.Second,
		DefaultWallTime: 4 * time.Hour,
		Seed:            3,
	})
	s := pilot.NewSession(eng, pilot.WithProfile(prof), pilot.WithSeed(42))
	if err := s.AddResource(&pilot.Resource{Name: "tm", URL: "slurm://tm", Machine: m, Batch: b}); err != nil {
		t.Fatal(err)
	}
	return &testEnv{eng: eng, machine: m, session: s}
}

// newUM builds a unit manager through the public API, failing the test
// on a bad option.
func newUM(t testing.TB, s *pilot.Session, opts ...pilot.UnitManagerOption) *pilot.UnitManager {
	t.Helper()
	um, err := pilot.NewUnitManager(s, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return um
}

func (e *testEnv) run(t *testing.T, driver func(p *sim.Proc)) {
	t.Helper()
	e.eng.Spawn("driver", driver)
	e.eng.Run()
	e.eng.Close()
}

func TestSessionOptions(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	prof := fastProfile()
	s := pilot.NewSession(eng, pilot.WithProfile(prof), pilot.WithSeed(7))
	if got := s.Profile(); got != prof {
		t.Fatalf("WithProfile not applied: got %+v", got)
	}
	// Defaults: no options means the calibrated profile.
	d := pilot.NewSession(eng)
	if got := d.Profile(); got != pilot.DefaultProfile() {
		t.Fatalf("default session profile = %+v", got)
	}
}

func TestEndToEndThroughPublicAPI(t *testing.T) {
	e := newTestEnv(t, 2)
	done := 0
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 2, Runtime: time.Hour, Mode: pilot.ModeHPC,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if !pl.WaitState(p, pilot.PilotActive) {
			t.Errorf("pilot never active: %v", pl.State())
			return
		}
		um := newUM(t, e.session)
		um.AddPilot(pl)
		var descs []pilot.ComputeUnitDescription
		for i := 0; i < 4; i++ {
			descs = append(descs, pilot.ComputeUnitDescription{
				Cores: 2,
				Body: func(bp *sim.Proc, ctx *pilot.UnitContext) {
					bp.Sleep(5 * time.Second)
					done++
				},
			})
		}
		units, err := um.Submit(p, descs)
		if err != nil {
			t.Error(err)
			return
		}
		um.WaitAll(p, units)
		for _, u := range units {
			if u.State() != pilot.UnitDone {
				t.Errorf("unit %s = %v (%v)", u.ID, u.State(), u.Err)
			}
		}
		pl.Cancel()
	})
	if done != 4 {
		t.Fatalf("%d unit bodies ran, want 4", done)
	}
}

// TestSubmitSkipsFinalPilots is the regression test for the
// Unit-Manager round-robin: a pilot in a final state must be skipped
// and its share routed to the remaining live pilots; units fail only
// when no live pilot remains.
func TestSubmitSkipsFinalPilots(t *testing.T) {
	e := newTestEnv(t, 4)
	counts := make(map[string]int)
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		var pilots []*pilot.Pilot
		for i := 0; i < 2; i++ {
			pl, err := pm.Submit(p, pilot.PilotDescription{
				Resource: "tm", Nodes: 2, Runtime: time.Hour,
			})
			if err != nil {
				t.Error(err)
				return
			}
			pilots = append(pilots, pl)
		}
		um := newUM(t, e.session)
		for _, pl := range pilots {
			pl.WaitState(p, pilot.PilotActive)
			um.AddPilot(pl)
		}
		// Kill the first pilot; the round-robin starts at it.
		pilots[0].Cancel()
		var descs []pilot.ComputeUnitDescription
		for i := 0; i < 4; i++ {
			descs = append(descs, pilot.ComputeUnitDescription{
				Body: func(bp *sim.Proc, ctx *pilot.UnitContext) { bp.Sleep(time.Second) },
			})
		}
		units, err := um.Submit(p, descs)
		if err != nil {
			t.Error(err)
			return
		}
		um.WaitAll(p, units)
		for _, u := range units {
			if u.State() != pilot.UnitDone {
				t.Errorf("unit %s = %v (%v), want DONE on the live pilot", u.ID, u.State(), u.Err)
			}
			counts[u.Pilot.ID]++
		}
		// Now kill the survivor too: units must fail, not hang.
		pilots[1].Cancel()
		failedUnits, err := um.Submit(p, descs[:1])
		if err != nil {
			t.Error(err)
			return
		}
		if st := failedUnits[0].State(); st != pilot.UnitFailed {
			t.Errorf("unit with no live pilots = %v, want FAILED", st)
		}
	})
	if len(counts) != 1 {
		t.Fatalf("units spread over %d pilots, want only the live one (%v)", len(counts), counts)
	}
	for id, n := range counts {
		if n != 4 {
			t.Fatalf("live pilot %s got %d units, want all 4", id, n)
		}
	}
}

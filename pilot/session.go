package pilot

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// Option configures a Session built by NewSession.
type Option func(*sessionConfig)

type sessionConfig struct {
	profile BootstrapProfile
	seed    int64
}

// WithProfile sets the bootstrap cost model (default: DefaultProfile).
func WithProfile(p BootstrapProfile) Option {
	return func(c *sessionConfig) { c.profile = p }
}

// WithSeed sets the session RNG seed; runs are deterministic per seed
// (default: 1).
func WithSeed(seed int64) Option {
	return func(c *sessionConfig) { c.seed = seed }
}

// NewSession creates a session on the engine with the given options.
//
//	session := pilot.NewSession(eng, pilot.WithProfile(prof), pilot.WithSeed(42))
func NewSession(eng *sim.Engine, opts ...Option) *Session {
	cfg := sessionConfig{profile: core.DefaultProfile(), seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.NewSession(eng, cfg.profile, cfg.seed)
}

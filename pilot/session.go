package pilot

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Option configures a Session built by NewSession.
type Option func(*sessionConfig)

type sessionConfig struct {
	profile     BootstrapProfile
	seed        int64
	recorder    *obs.Recorder
	metricsAddr string
}

// WithProfile sets the bootstrap cost model (default: DefaultProfile).
func WithProfile(p BootstrapProfile) Option {
	return func(c *sessionConfig) { c.profile = p }
}

// WithSeed sets the session RNG seed; runs are deterministic per seed
// (default: 1).
func WithSeed(seed int64) Option {
	return func(c *sessionConfig) { c.seed = seed }
}

// WithRecorder attaches a flight recorder (NewRecorder) to the session:
// every manager built on it records unit/pilot/Data-Unit state
// transitions, scheduler bind decisions, autoscaler verdicts,
// hold/release edges, result-cache traffic and replica motion through
// r, and the Unit-Manager samples live gauges into r's Series on every
// scheduling event. Recording is strictly opt-in — without this option
// the instrumented paths cost one nil check.
func WithRecorder(r *Recorder) Option {
	return func(c *sessionConfig) { c.recorder = r }
}

// WithMetricsAddr starts a live telemetry endpoint for the session:
// it ensures a flight recorder (creating one when WithRecorder was not
// given), bridges its event stream into a fresh MetricsRegistry, and
// serves Prometheus text at http://<addr>/metrics plus the JSON
// snapshot at /debug/pilot until the server is closed
// (Session.MetricsServer().Close()). addr is a listen address like
// ":9090" or "127.0.0.1:0" (port 0 picks a free port; read it back
// with Session.MetricsServer().Addr()).
//
// Listening failures panic: options cannot return errors, and a
// requested-but-dead telemetry endpoint should not fail silently. Use
// ServeMetrics directly for an error-returning path.
func WithMetricsAddr(addr string) Option {
	return func(c *sessionConfig) { c.metricsAddr = addr }
}

// NewSession creates a session on the engine with the given options.
//
//	session := pilot.NewSession(eng, pilot.WithProfile(prof), pilot.WithSeed(42))
func NewSession(eng *sim.Engine, opts ...Option) *Session {
	cfg := sessionConfig{profile: core.DefaultProfile(), seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	s := core.NewSession(eng, cfg.profile, cfg.seed)
	if cfg.metricsAddr != "" && cfg.recorder == nil {
		cfg.recorder = obs.NewRecorder(eng)
	}
	if cfg.recorder != nil {
		s.AttachRecorder(cfg.recorder)
	}
	if cfg.metricsAddr != "" {
		reg := metrics.NewRegistry()
		cfg.recorder.OnRecord(obs.NewBridge(reg).Apply)
		srv, err := obs.ServeMetrics(cfg.metricsAddr, reg)
		if err != nil {
			panic("pilot: WithMetricsAddr: " + err.Error())
		}
		s.AttachMetrics(reg, srv)
	}
	return s
}

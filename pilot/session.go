package pilot

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Option configures a Session built by NewSession.
type Option func(*sessionConfig)

type sessionConfig struct {
	profile  BootstrapProfile
	seed     int64
	recorder *obs.Recorder
}

// WithProfile sets the bootstrap cost model (default: DefaultProfile).
func WithProfile(p BootstrapProfile) Option {
	return func(c *sessionConfig) { c.profile = p }
}

// WithSeed sets the session RNG seed; runs are deterministic per seed
// (default: 1).
func WithSeed(seed int64) Option {
	return func(c *sessionConfig) { c.seed = seed }
}

// WithRecorder attaches a flight recorder (NewRecorder) to the session:
// every manager built on it records unit/pilot/Data-Unit state
// transitions, scheduler bind decisions, autoscaler verdicts,
// hold/release edges, result-cache traffic and replica motion through
// r, and the Unit-Manager samples live gauges into r's Series on every
// scheduling event. Recording is strictly opt-in — without this option
// the instrumented paths cost one nil check.
func WithRecorder(r *Recorder) Option {
	return func(c *sessionConfig) { c.recorder = r }
}

// NewSession creates a session on the engine with the given options.
//
//	session := pilot.NewSession(eng, pilot.WithProfile(prof), pilot.WithSeed(42))
func NewSession(eng *sim.Engine, opts ...Option) *Session {
	cfg := sessionConfig{profile: core.DefaultProfile(), seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	s := core.NewSession(eng, cfg.profile, cfg.seed)
	if cfg.recorder != nil {
		s.AttachRecorder(cfg.recorder)
	}
	return s
}

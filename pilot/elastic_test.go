package pilot_test

import (
	"errors"
	"fmt"
	"slices"
	"strings"
	"testing"
	"time"

	"repro/internal/hdfs"
	"repro/internal/hpc"
	"repro/internal/sim"
	"repro/internal/yarn"
	"repro/pilot"
)

// TestElasticBackendConformance runs the elasticity contract against
// every registered backend, including the toy one registered from this
// test package:
//
//   - elastic backends: a grow is visible in Capacity() and in actual
//     scheduler slots (more units run concurrently than the base
//     allocation could hold), and a shrink is drain-then-release — no
//     running unit is ever killed;
//   - non-elastic backends: Resize fails with ErrNotElastic and the
//     pilot keeps working;
//   - every backend: Resize after a final state fails with
//     ErrPilotFinal.
func TestElasticBackendConformance(t *testing.T) {
	registerToy(t)
	for _, mode := range pilot.Backends() {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			e := newTestEnv(t, 6)
			e.run(t, func(p *sim.Proc) {
				pm := pilot.NewPilotManager(e.session)
				pl, err := pm.Submit(p, pilot.PilotDescription{
					Resource: "tm", Nodes: 2, Runtime: 2 * time.Hour, Mode: pilot.PilotMode(mode),
				})
				if err != nil {
					t.Error(err)
					return
				}
				um := newUM(t, e.session, pilot.WithScheduler(pilot.SchedulerBackfill))
				if err := um.AddPilot(pl); err != nil {
					t.Error(err)
					return
				}
				if !pl.WaitState(p, pilot.PilotActive) {
					t.Errorf("pilot never active: %v", pl.State())
					return
				}
				if got := pl.Capacity(); got != 2 {
					t.Errorf("base capacity = %d, want 2", got)
				}

				err = pl.Resize(p, 2)
				if err != nil {
					if !errors.Is(err, pilot.ErrNotElastic) {
						t.Errorf("non-elastic resize error = %v, want ErrNotElastic", err)
					}
					if pl.State() != pilot.PilotActive {
						t.Errorf("failed resize disturbed the pilot: %v", pl.State())
					}
					// The pilot must keep working after the refusal.
					units, err := um.Submit(p, []pilot.ComputeUnitDescription{{
						Name: "sanity", Cores: 1,
					}})
					if err != nil {
						t.Error(err)
						return
					}
					um.WaitAll(p, units)
					if units[0].State() != pilot.UnitDone {
						t.Errorf("post-refusal unit %v (%v)", units[0].State(), units[0].Err)
					}
				} else {
					conformElastic(t, p, e, pl, um)
				}

				pl.Cancel()
				pl.Wait(p)
				if err := pl.Resize(p, 1); !errors.Is(err, pilot.ErrPilotFinal) {
					t.Errorf("resize after final = %v, want ErrPilotFinal", err)
				}
				if err := pl.Resize(p, -1); !errors.Is(err, pilot.ErrPilotFinal) {
					t.Errorf("shrink after final = %v, want ErrPilotFinal", err)
				}
			})
		})
	}
}

// conformElastic checks the grown pilot: capacity, usable slots, and
// drain-then-release shrink. Entered with one 2-node chunk grown on top
// of the 2-node base allocation (8-core nodes).
func conformElastic(t *testing.T, p *sim.Proc, e *testEnv, pl *pilot.Pilot, um *pilot.UnitManager) {
	t.Helper()
	if got := pl.Capacity(); got != 4 {
		t.Errorf("capacity after +2 = %d, want 4", got)
	}
	if m := pl.YARNMetrics(); m != nil && m.TotalVCores != 4*8 {
		t.Errorf("YARN vcores after grow = %d, want 32", m.TotalVCores)
	}

	// Grown slots are real: four 8-core units fill all four nodes
	// concurrently — the 2-node base allocation could run only two.
	running, peak := 0, 0
	wide := func(name string) pilot.ComputeUnitDescription {
		return pilot.ComputeUnitDescription{
			Name: name, Cores: 8,
			Body: func(bp *sim.Proc, ctx *pilot.UnitContext) {
				running++
				if running > peak {
					peak = running
				}
				ctx.Node.Compute(bp, 20)
				running--
			},
		}
	}
	var descs []pilot.ComputeUnitDescription
	for i := 0; i < 4; i++ {
		descs = append(descs, wide(fmt.Sprintf("wide-%d", i)))
	}
	units, err := um.Submit(p, descs)
	if err != nil {
		t.Error(err)
		return
	}
	um.WaitAll(p, units)
	for _, u := range units {
		if u.State() != pilot.UnitDone {
			t.Errorf("unit %s: %v (%v)", u.ID, u.State(), u.Err)
		}
	}
	if peak != 4 {
		t.Errorf("peak concurrency = %d, want 4 (grown slots unusable?)", peak)
	}

	// Shrink while units run: the drain must let every unit finish —
	// shrink never kills a running unit.
	running, peak = 0, 0
	descs = descs[:0]
	for i := 0; i < 4; i++ {
		descs = append(descs, wide(fmt.Sprintf("drain-%d", i)))
	}
	units, err = um.Submit(p, descs)
	if err != nil {
		t.Error(err)
		return
	}
	p.Sleep(2 * time.Second) // let the batch occupy the chunk nodes
	if err := pl.Resize(p, -2); err != nil {
		t.Errorf("shrink: %v", err)
		return
	}
	if got := pl.Capacity(); got != 2 {
		t.Errorf("capacity after -2 = %d, want 2", got)
	}
	um.WaitAll(p, units)
	for _, u := range units {
		if u.State() != pilot.UnitDone {
			t.Errorf("unit %s killed by shrink: %v (%v)", u.ID, u.State(), u.Err)
		}
	}

	// Shrinking below the base allocation is rejected, not applied.
	if err := pl.Resize(p, -1); err == nil {
		t.Error("shrink below base allocation accepted")
	}
	if got := pl.Capacity(); got != 2 {
		t.Errorf("capacity after rejected shrink = %d, want 2", got)
	}
}

// TestModeIIPilotNotElastic: a Mode II pilot connects to a dedicated
// cluster it does not manage, so even though the YARN backend is
// elastic, Resize must refuse with ErrNotElastic.
func TestModeIIPilotNotElastic(t *testing.T) {
	e := newTestEnv(t, 4)
	fs, err := hdfs.New(e.eng, hdfs.DefaultConfig(), e.machine.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	ycfg := yarn.DefaultConfig()
	ycfg.Fetcher = yarn.VolumeFetcher{Volume: e.machine.Lustre}
	rm, err := yarn.NewResourceManager(e.eng, ycfg, e.machine.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh batch front-end for the dedicated resource; the "tm"
	// resource (and its scheduler) goes unused in this test.
	batch := hpc.NewBatch(e.machine, hpc.Config{
		SchedCycle: 10 * time.Second, Prolog: 2 * time.Second,
		MinQueueWait: time.Second, DefaultWallTime: 4 * time.Hour, Seed: 3,
	})
	if err := e.session.AddResource(&pilot.Resource{
		Name: "dedicated", URL: "slurm://dedicated", Machine: e.machine,
		Batch: batch, DedicatedYARN: rm, DedicatedHDFS: fs,
	}); err != nil {
		t.Fatal(err)
	}
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "dedicated", Nodes: 2, Runtime: time.Hour,
			Mode: pilot.ModeYARN, ConnectDedicated: true,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if !pl.WaitState(p, pilot.PilotActive) {
			t.Errorf("pilot never active: %v", pl.State())
			return
		}
		if err := pl.Resize(p, 1); !errors.Is(err, pilot.ErrNotElastic) {
			t.Errorf("Mode II resize = %v, want ErrNotElastic", err)
		}
		pl.Cancel()
	})
}

// TestResizeGrowKicksParkedBackfillUnits is the bind-loop regression
// test: a Resize that adds capacity must kick the Unit-Manager so
// parked backfill units bind immediately, without waiting for the next
// unit event (completion, new pilot, ...).
func TestResizeGrowKicksParkedBackfillUnits(t *testing.T) {
	e := newTestEnv(t, 3)
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 1, Runtime: time.Hour, Mode: pilot.ModeHPC,
		})
		if err != nil {
			t.Error(err)
			return
		}
		um := newUM(t, e.session, pilot.WithScheduler(pilot.SchedulerBackfill))
		um.AddPilot(pl)
		if !pl.WaitState(p, pilot.PilotActive) {
			t.Errorf("pilot never active: %v", pl.State())
			return
		}
		// Two node-filling units: the first saturates the single node,
		// the second must park in the manager (capacity-aware late
		// binding).
		long := func(name string) pilot.ComputeUnitDescription {
			return pilot.ComputeUnitDescription{
				Name: name, Cores: 8,
				Body: func(bp *sim.Proc, ctx *pilot.UnitContext) {
					ctx.Node.Compute(bp, 30)
				},
			}
		}
		units, err := um.Submit(p, []pilot.ComputeUnitDescription{long("first"), long("second")})
		if err != nil {
			t.Error(err)
			return
		}
		p.Sleep(3 * time.Second)
		if st := units[1].State(); st != pilot.UnitSchedulingUM {
			t.Errorf("second unit not parked before resize: %v", st)
		}
		if err := pl.Resize(p, 1); err != nil {
			t.Errorf("resize: %v", err)
			return
		}
		// No unit event happens here: only the resize's completion kick
		// can bind the parked unit. Give the bind loop a moment well
		// below the first unit's remaining runtime.
		p.Sleep(5 * time.Second)
		if st := units[1].State(); st < pilot.UnitPendingAgent {
			t.Errorf("parked unit not bound after resize kick: %v", st)
		}
		if st := units[0].State(); st.Final() {
			t.Errorf("first unit already %v; kick test window too late", st)
		}
		um.WaitAll(p, units)
		for _, u := range units {
			if u.State() != pilot.UnitDone {
				t.Errorf("unit %s: %v (%v)", u.ID, u.State(), u.Err)
			}
		}
		// The overlap proves the parked unit ran on grown capacity
		// while the first still held the base node.
		if units[1].Timestamps[pilot.UnitExecuting] >= units[0].Timestamps[pilot.UnitDone] {
			t.Error("second unit waited for the first to finish; resize kick did not late-bind it")
		}
		pl.Cancel()
	})
}

// TestBackfillBindsDuringResize: a resizing pilot keeps serving units
// on its current capacity — the backfill policy must bind to a pilot in
// PMGR_ACTIVE_RESIZING rather than parking everything for the duration
// of the (potentially long) resize.
func TestBackfillBindsDuringResize(t *testing.T) {
	e := newTestEnv(t, 3)
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 1, Runtime: time.Hour, Mode: pilot.ModeHPC,
		})
		if err != nil {
			t.Error(err)
			return
		}
		um := newUM(t, e.session, pilot.WithScheduler(pilot.SchedulerBackfill))
		um.AddPilot(pl)
		if !pl.WaitState(p, pilot.PilotActive) {
			t.Errorf("pilot never active: %v", pl.State())
			return
		}
		// Start a grow on a separate process; its chunk job pays the
		// batch queue wait, holding the pilot in Resizing for seconds.
		var resizeEnd time.Duration
		resized := sim.NewEvent(e.eng)
		e.eng.Spawn("resizer", func(rp *sim.Proc) {
			if err := pl.Resize(rp, 1); err != nil {
				t.Errorf("resize: %v", err)
			}
			resizeEnd = rp.Now()
			resized.Trigger()
		})
		p.Sleep(500 * time.Millisecond)
		if st := pl.State(); st != pilot.PilotResizing {
			t.Errorf("pilot not resizing when units arrive: %v", st)
		}
		units, err := um.Submit(p, []pilot.ComputeUnitDescription{{
			Name: "mid-resize", Cores: 2,
			Body: func(bp *sim.Proc, ctx *pilot.UnitContext) {
				ctx.Node.Compute(bp, 1)
			},
		}})
		if err != nil {
			t.Error(err)
			return
		}
		um.WaitAll(p, units)
		if units[0].State() != pilot.UnitDone {
			t.Errorf("unit %v (%v)", units[0].State(), units[0].Err)
		}
		p.Wait(resized)
		if resizeEnd == 0 {
			t.Error("resize never completed")
		}
		if bound := units[0].Timestamps[pilot.UnitPendingAgent]; bound >= resizeEnd {
			t.Errorf("unit bound at %v, only after the resize finished at %v", bound, resizeEnd)
		}
		pl.Cancel()
	})
}

// ladderPolicy is the custom toy autoscale policy registered from the
// test suite: grow one node whenever anything waits, release one once
// idle.
type ladderPolicy struct{}

func (ladderPolicy) Name() string { return "toy-ladder" }

func (ladderPolicy) Decide(s *pilot.AutoscaleSnapshot) int {
	switch {
	case s.WaitingUnits > 0:
		return 1
	case s.RunningUnits == 0 && s.Nodes > s.MinNodes:
		return -1
	}
	return 0
}

func registerLadder(t *testing.T) {
	t.Helper()
	err := pilot.RegisterAutoscalePolicy("toy-ladder", func() pilot.AutoscalePolicy { return ladderPolicy{} })
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
}

// TestAutoscalePolicyConformance drives every registered autoscale
// policy — built-ins plus the toy ladder registered here — through a
// backlogged workload and checks the common contract: every unit
// completes, every applied resize stays within the configured bounds,
// and the pilot survives to the end.
func TestAutoscalePolicyConformance(t *testing.T) {
	registerLadder(t)
	if !slices.Contains(pilot.AutoscalePolicies(), "toy-ladder") {
		t.Fatalf("registry %v missing toy policy", pilot.AutoscalePolicies())
	}
	for _, name := range pilot.AutoscalePolicies() {
		name := name
		t.Run(name, func(t *testing.T) {
			e := newTestEnv(t, 4)
			e.run(t, func(p *sim.Proc) {
				pm := pilot.NewPilotManager(e.session)
				pl, err := pm.Submit(p, pilot.PilotDescription{
					Resource: "tm", Nodes: 1, Runtime: 2 * time.Hour, Mode: pilot.ModeHPC,
				})
				if err != nil {
					t.Error(err)
					return
				}
				um := newUM(t, e.session, pilot.WithScheduler(pilot.SchedulerBackfill))
				um.AddPilot(pl)
				as, err := pilot.NewAutoscaler(um, pl,
					pilot.WithAutoscalePolicy(name),
					pilot.WithAutoscaleBounds(1, 3),
					pilot.WithAutoscaleInterval(2*time.Second),
				)
				if err != nil {
					t.Error(err)
					return
				}
				if !pl.WaitState(p, pilot.PilotActive) {
					t.Errorf("pilot never active: %v", pl.State())
					return
				}
				var descs []pilot.ComputeUnitDescription
				for i := 0; i < 16; i++ {
					descs = append(descs, pilot.ComputeUnitDescription{
						Name: fmt.Sprintf("u-%02d", i), Cores: 2,
						Body: func(bp *sim.Proc, ctx *pilot.UnitContext) {
							ctx.Node.Compute(bp, 15)
						},
					})
				}
				units, err := um.Submit(p, descs)
				if err != nil {
					t.Error(err)
					return
				}
				um.WaitAll(p, units)
				for _, u := range units {
					if u.State() != pilot.UnitDone {
						t.Errorf("unit %s: %v (%v)", u.ID, u.State(), u.Err)
					}
				}
				for _, r := range as.History() {
					if r.From < 1 || r.From > 3 || r.To < 1 || r.To > 3 {
						t.Errorf("resize %d->%d escaped bounds [1, 3]", r.From, r.To)
					}
				}
				if pl.State().Final() {
					t.Errorf("pilot died during autoscaling: %v", pl.State())
				}
				as.Stop()
				pl.Cancel()
			})
		})
	}
}

// TestAutoscaleRegistryMirrorsOtherRegistries: same error contract as
// the backend and unit-scheduler registries.
func TestAutoscaleRegistryMirrorsOtherRegistries(t *testing.T) {
	registerLadder(t)
	err := pilot.RegisterAutoscalePolicy("toy-ladder", func() pilot.AutoscalePolicy { return ladderPolicy{} })
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration accepted (err=%v)", err)
	}
	if err := pilot.RegisterAutoscalePolicy("nil-factory", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := pilot.RegisterAutoscalePolicy("", func() pilot.AutoscalePolicy { return ladderPolicy{} }); err == nil {
		t.Fatal("empty name accepted")
	}
	for _, want := range []string{"queue-depth", "utilization", "deadline"} {
		if !slices.Contains(pilot.AutoscalePolicies(), want) {
			t.Fatalf("registry %v missing built-in %q", pilot.AutoscalePolicies(), want)
		}
	}
}

// TestUnknownAutoscalePolicy: the error is typed and lists what exists.
func TestUnknownAutoscalePolicy(t *testing.T) {
	e := newTestEnv(t, 2)
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 1, Runtime: time.Hour,
		})
		if err != nil {
			t.Error(err)
			return
		}
		um := newUM(t, e.session)
		um.AddPilot(pl)
		_, err = pilot.NewAutoscaler(um, pl, pilot.WithAutoscalePolicy("no-such-policy"))
		if !errors.Is(err, pilot.ErrUnknownAutoscalePolicy) {
			t.Errorf("err = %v, want ErrUnknownAutoscalePolicy", err)
		}
		if err == nil || !strings.Contains(err.Error(), "queue-depth") {
			t.Errorf("error does not list registered policies: %v", err)
		}
		pl.Cancel()
	})
}

// Package pilot is the public Pilot-API of this repository: a stable,
// idiomatic surface over the RADICAL-Pilot middleware reproduction in
// internal/core. It is the package applications, examples and the repro
// harness program against; internal/core is an implementation detail.
//
// # The Pilot-Abstraction
//
// The paper's core contribution is the Pilot-Abstraction as a uniform
// API over heterogeneous runtimes: a placeholder job (the Pilot) is
// scheduled through the machine's batch system, and application
// workloads (Compute-Units) are then multiplexed onto it without
// further queue waits. This package exposes that abstraction with two
// extension seams:
//
//   - Execution backends. A PilotDescription's Mode names a Backend
//     registered with RegisterBackend. The built-ins are ModeHPC (plain
//     fork/mpiexec execution), ModeYARN (paper Mode I "Hadoop on HPC"
//     spawning a cluster in the allocation, or Mode II "HPC on Hadoop"
//     connecting to a dedicated cluster via ConnectDedicated), and
//     ModeSpark (standalone Spark). New runtimes — a Dask- or
//     Kubernetes-flavoured backend, say — implement the Backend
//     interface and register; no core file changes.
//
//   - Unit schedulers. NewUnitManager takes WithScheduler to select the
//     policy that binds Compute-Units to pilots: the built-ins are
//     "round-robin" (the default), "least-loaded", "backfill"
//     (capacity-aware late binding), "locality" (data-aware placement
//     via ComputeUnitDescription.Inputs), and "co-locate". New policies
//     implement UnitScheduler and register with RegisterUnitScheduler.
//     Under every policy, units bound to a pilot that dies while they
//     are still queued in the coordination store are rebound to the
//     surviving pilots; units its agent had already started processing
//     are canceled with it.
//
//   - State callbacks. Pilot.OnStateChange and Unit.OnStateChange
//     mirror RADICAL-Pilot's register_callback: subscribers observe
//     every state an entity actually enters. Wait, WaitState and
//     WaitAll are built on the same fabric, so blocking and reactive
//     styles compose.
//
//   - Elasticity. Pilots are no longer fixed-size: Pilot.Resize grows a
//     running pilot by acquiring extra allocation chunks through the
//     batch system and integrating them into the backend (extra
//     NodeManagers registering with the YARN ResourceManager — the
//     paper's cluster-extension mode — or extra nodes feeding the HPC
//     agent scheduler), and shrinks drain-then-release: running units
//     always finish before nodes are surrendered. Pilot.Capacity
//     reports the current size and the transient PilotResizing state
//     marks a resize in flight. The Autoscaler drives Resize from a
//     pluggable AutoscalePolicy — built-ins "queue-depth",
//     "utilization" and "deadline"; register new ones with
//     RegisterAutoscalePolicy — as a kick-driven control loop wired to
//     the Unit-Manager's scheduling events. Backends opt in by
//     implementing ElasticBackend; Resize on backends that do not
//     (Spark) fails with ErrNotElastic.
//
//   - Pilot-Data. Data is first-class next to compute: a DataManager
//     (NewDataManager) provisions DataPilots on registered data
//     backends — DataBackendLustre (shared filesystem),
//     DataBackendHDFS (a compute pilot's Mode I cluster or a dedicated
//     Mode II one), DataBackendMem (the Pilot-in-Memory tier), plus
//     anything added with RegisterDataBackend — and stages DataUnits
//     onto them through the state machine DataNew → DataStagingIn →
//     DataReplicated → final (same OnStateChange/Wait/WaitState fabric
//     as pilots and units). Replica placement is deterministic:
//     affinity label first, then least-occupied store; replication is
//     capped at the eligible pilots. Compute references data by type —
//     ComputeUnitDescription.Inputs/Outputs []DataRef — and the agent
//     stages every input before the unit reaches UnitExecuting and
//     every declared output when it completes. Attach a data pilot
//     with Pilot.AttachDataPilot and the "locality" and "co-locate"
//     schedulers bind compute to the pilot holding the most input
//     bytes; "co-locate" additionally ranks pilots last when their
//     attached store cannot absorb the unit's declared output bytes.
//
//   - Workload DAGs. NewUnitGraph builds a UnitGraph: Compute-Units
//     whose dependency edges are inferred from Pilot-Data references —
//     a unit listing another unit's declared output among its Inputs
//     depends on it. Submit validates the graph (ErrGraphDuplicateOutput,
//     ErrGraphUnknownInput, ErrGraphCycle and friends, all
//     errors.Is-matchable) and admits every unit at once; the
//     Unit-Manager holds each in UnitPendingInput until its inputs are
//     REPLICATED, releases it off the data layer's state callbacks, and
//     binds by ComputeUnitDescription.Priority — set per unit to its
//     critical-path length under OrderCriticalPath (the default), or
//     left zero for Add-order under OrderFIFO. Failed or unplaceable
//     producers cancel their still-new outputs, so held descendants
//     fail with ErrDataUnavailable instead of waiting forever. The
//     cmd/repro "dag" experiment measures critical-path vs FIFO
//     ordering on a skewed map/shuffle/reduce DAG.
//
//   - Result caching. NewUnitManager(s, WithResultCache(bytes)) serves
//     repeat submissions of identical Compute-Units from a
//     content-addressed cache of completed results. Submissions are
//     keyed by UnitKey — a digest over Executable, Arguments, the input
//     Data-Units (logical name + size) and the declared output
//     Data-Units, order-insensitive over Inputs/Outputs; Cores,
//     MemoryMB, Launch and staging byte counts are excluded because
//     they change how fast a unit runs, never what it produces. A hit
//     completes inside Submit with its Outputs staged as ordinary
//     replicas, never entering the bind loop; a submission identical to
//     a unit still executing coalesces singleflight-style, parking in
//     UnitPendingResult (invisible to ClusterView demand counts) until
//     the leader settles. A failed or canceled leader caches nothing
//     and releases its waiters to execute independently — never a
//     poisoned entry. Entries are LRU-evicted past the byte bound;
//     units declaring no Outputs are uncacheable (ErrCacheNoOutputs,
//     wrapping ErrUncacheable) and always execute. Counters surface as
//     ClusterView.Cache; the cmd/repro "cache" experiment measures the
//     effect on a redundant multi-user workload. The cache is strictly
//     opt-in, and the determinism contract is the application's:
//     executable + arguments + inputs must fully determine the declared
//     outputs.
//
// # Placement fabric
//
// All three decision layers — unit schedulers, autoscale policies, and
// the Pilot-Data co-scheduling signals — consume one coherent snapshot
// of the cluster instead of probing their own partial pictures: the
// ClusterView, assembled by UnitManager.ClusterView. A view carries,
// per pilot, the core capacity (tracking elastic resizes and YARN
// vcores), the waiting/running demand split, the attached data store's
// used/free bytes, and the input bytes parked behind the manager's
// waiting units. Unit schedulers receive it as Candidate.View; autoscale
// policies as AutoscaleSnapshot.View. The demand counts are maintained
// incrementally off the manager's unit accounting (no per-view walk of
// the in-flight units), and the assembled snapshot is memoized behind
// the scheduling-event generation counter, so autoscaler ticks that
// land between events reuse it.
//
// On top of the shared view sits the "data-aware" autoscale policy
// (AutoscaleDataAware, DataAwarePolicy): it grows the pilot whose
// attached store holds the most bytes behind the pending units' Inputs
// — capacity moves to the data, the resize-time analogue of the
// "co-locate" scheduler — and holds pilots whose stores are cold, so
// they stop racing the hot pilot for free nodes. Without a data signal
// it degrades to exactly "queue-depth". The cmd/repro "dataelastic"
// experiment measures the effect on a data-skewed workload.
//
// The data tier is failure-injectable and caching: DataManager.FailPilot
// kills a store mid-run — surviving replicas re-replicate back to the
// target (cached copies are promoted first), and compute units fail
// with ErrDataUnavailable only when an input's last copy died. Stage-in
// through a remote replica leaves an opportunistic cached replica on
// the reading pilot's attached store (capacity-bounded, excluded from
// the replication target, readable like any replica — DataUnit.CachedOn
// distinguishes it), so iterative workloads converge to fully local
// reads without affinity hints.
//
// # Observability
//
// The stack is wired to an opt-in flight recorder. Build a session
// with NewSession(eng, WithRecorder(NewRecorder(eng))) — or attach one
// later with Session.AttachRecorder — and every layer emits typed,
// sim-timestamped events onto one stream (Recorder.Events): pilot,
// unit and Data-Unit state transitions; scheduler bind verdicts;
// autoscaler grow/shrink/hold decisions; DAG admissions and
// hold/release edges; result-cache hits, misses and coalesces; replica
// placement, failure and re-replication; and the engine's Tracef
// lines. On every scheduling event the recorder also samples
// ClusterView into a Series of live gauges (cores, utilization,
// demand, cache counters), exportable as JSON Lines.
//
// Four consumers sit on the stream: WriteChromeTrace and
// WriteChromeTraceCells render it as Chrome trace-event JSON viewable
// in Perfetto (one complete span per executed unit, instants for
// decisions); VerifyBinds and DoneUnits audit scheduling invariants
// (every DONE unit bound exactly once, coalesced cache waiters never
// bound); internal/profiling derives its per-phase breakdowns from
// the same events; and the metrics bridge below folds the stream into
// labeled instruments. The cmd/repro harness records any experiment
// with -trace/-series, and cmd/tracecheck validates both exports
// (-seriesfile for the gauge stream). Without a recorder attached,
// every instrumentation site reduces to a nil check.
//
// # Metrics
//
// MetricsRegistry is a labeled-instrument registry — counters, gauges
// and histograms with ordered label sets — safe for concurrent
// observation and scraping. Two paths fill it from the event stream:
// MetricsFromEvents(rec.Events()) replays a finished recording, and
// NewMetricsBridge(reg) with rec.OnRecord(bridge.Apply) folds events
// in live as they are recorded. Instrument names follow Prometheus
// conventions (snake_case, unit suffixes, _total on counters); labels
// stay low-cardinality — pilot ("pilot.0001"), scheduler (the binding
// policy, or "cache" for units completed from the result cache),
// policy, op, store, kind. The derived set covers completions and
// failures per pilot (pilot_units_done, pilot_units_failed), live
// execution and hold gauges (pilot_units_running, pilot_units_held),
// submit-to-bind latency and execution time histograms
// (bind_latency_seconds, unit_duration_seconds), autoscale
// applications, cache ops, and replica traffic in operations and
// bytes.
//
// WithMetricsAddr("127.0.0.1:9090") makes a session serve its
// registry over HTTP for the lifetime of the process: GET /metrics
// returns Prometheus text exposition format (0.0.4), GET /debug/pilot
// the same registry as JSON. The option ensures a recorder exists,
// bridges it into a fresh registry, and panics if the address cannot
// be listened on; Session.Metrics and Session.MetricsServer expose
// the pieces, and ServeMetrics serves any registry standalone. The
// cmd/repro harness wires the same plumbing with -metrics addr
// (add -linger to keep the endpoint up after the experiments finish),
// and its "scale" subcommand sweeps a backfill workload across
// 10²–10⁵ units, writing per-scale throughput, bind-pass and
// turnaround-percentile rows to BENCH_scale.json — the document
// cmd/benchjson's -compare mode gates CI against.
//
// # Scheduling internals
//
// The bind loop that makes the 10⁵-unit sweep feasible is
// capacity-indexed. Units a late-binding policy cannot place yet park
// in priority heaps keyed by their core demand; a scheduling event
// (free capacity, a new or resized pilot, fresh submissions) re-offers
// only the classes the current free capacity could actually satisfy,
// and pilot-set changes trigger a full re-offer so ErrUnschedulable
// verdicts stay current. Offer order is priority-descending with FIFO
// tie-breaks — identical to the previous sort-per-pass loop, so
// seed-for-seed schedules are unchanged — but each unit is now offered
// ~2 times instead of once per kick. Representative engine throughput
// at seed 42 (units/sec, host wall-clock, same hardware):
//
//	units    rescan loop    capacity-indexed
//	10²          7523            26235
//	10³           395            16998
//	10⁴             2.7          16124
//	10⁵      infeasible           7274
//
// ClusterView demand counts ride the same accounting incrementally,
// and the sim layer's Notifier indexes threshold waiters
// (Wait/WaitState/WaitAll) in a min-heap so a state entry wakes
// exactly the released waiters instead of scanning every parked one.
//
// Every pluggable seam above — execution backends, unit schedulers,
// autoscale policies, data backends — is one instance of the same
// generic registry (internal/registry): duplicate, empty and nil
// registrations are rejected, names list sorted, and unknown names wrap
// the seam's sentinel for errors.Is. Registering the next seam is a
// one-liner.
//
// Failure modes carry typed causes: match Submit errors, Resize errors
// and Unit.Err against the ErrNoPilots, ErrNoLivePilot,
// ErrUnschedulable, ErrUnknownScheduler, ErrUnknownResource,
// ErrUnknownBackend, ErrNotElastic, ErrPilotFinal and
// ErrUnknownAutoscalePolicy sentinels with errors.Is; the Pilot-Data
// analogues are ErrUnknownDataBackend, ErrNoDataPilots,
// ErrDataUnavailable and ErrDataStoreFull, and the UnitGraph analogues
// ErrGraphEmpty, ErrGraphDuplicateUnit, ErrGraphDuplicateOutput,
// ErrGraphUnknownInput, ErrGraphCycle and ErrGraphSubmitted.
//
// # Quickstart
//
//	eng := sim.NewEngine()
//	session := pilot.NewSession(eng, pilot.WithSeed(42))
//	// register a Resource, then:
//	eng.Spawn("driver", func(p *sim.Proc) {
//		pm := pilot.NewPilotManager(session)
//		pl, err := pm.Submit(p, pilot.PilotDescription{
//			Resource: "stampede", Nodes: 2, Runtime: time.Hour,
//		})
//		// ...
//		pl.WaitState(p, pilot.PilotActive)
//		um, _ := pilot.NewUnitManager(session, pilot.WithScheduler("backfill"))
//		um.AddPilot(pl)
//		units, _ := um.Submit(p, descs)
//		um.WaitAll(p, units)
//	})
//	eng.Run()
//
// See README.md for the full tour and the examples/ directory for
// runnable programs.
package pilot

package pilot

import "repro/internal/core"

// The core sentinel errors, re-exported so applications can branch on
// failure causes with errors.Is without importing internal packages.
// Every variable aliases the identical core sentinel, so an error
// produced anywhere in the stack matches here:
//
//	units, err := um.Submit(p, descs)
//	if errors.Is(err, pilot.ErrNoPilots) { ... }
//	for _, u := range units {
//		if errors.Is(u.Err, pilot.ErrUnschedulable) { ... }
//	}
var (
	// ErrNoPilots: Submit on a UnitManager with no pilots added.
	ErrNoPilots = core.ErrNoPilots
	// ErrNoLivePilot: every pilot added to the manager has reached a
	// final state; recorded as the failed unit's Err.
	ErrNoLivePilot = core.ErrNoLivePilot
	// ErrUnschedulable: the unit's resource demands can never be met by
	// the manager's pilots or the pilot's allocation.
	ErrUnschedulable = core.ErrUnschedulable
	// ErrUnknownScheduler: WithScheduler named an unregistered policy.
	ErrUnknownScheduler = core.ErrUnknownScheduler
	// ErrUnknownResource: a pilot description named a resource that was
	// never added to the session.
	ErrUnknownResource = core.ErrUnknownResource
	// ErrUnknownBackend: a pilot description's Mode named an
	// unregistered execution backend.
	ErrUnknownBackend = core.ErrUnknownBackend

	// ErrNotElastic: Resize on a pilot whose backend cannot change
	// capacity at runtime — the backend implements no Grow/Shrink
	// (Spark), or the deployment forbids it (a Mode II pilot connected
	// to a dedicated cluster it does not manage):
	//
	//	if err := pl.Resize(p, 2); errors.Is(err, pilot.ErrNotElastic) {
	//		// fall back to submitting a second pilot
	//	}
	ErrNotElastic = core.ErrNotElastic

	// ErrPilotFinal: an operation (Resize) on a pilot that has already
	// reached a final state (Done, Canceled, Failed).
	ErrPilotFinal = core.ErrPilotFinal

	// ErrUnknownAutoscalePolicy: WithAutoscalePolicy named a policy
	// never registered through RegisterAutoscalePolicy.
	ErrUnknownAutoscalePolicy = core.ErrUnknownAutoscalePolicy
)

package pilot

import (
	"repro/internal/cache"
	"repro/internal/core"
)

// The result-cache surface: a Unit-Manager built WithResultCache serves
// repeat submissions of identical Compute-Units from a
// content-addressed cache of completed results and coalesces concurrent
// identical submissions singleflight-style. See WithResultCache and
// UnitKey for the rules.
type (
	// CacheKey is the content address of a Compute-Unit's result — the
	// UnitKey digest.
	CacheKey = cache.Key
	// CacheStats carries the result cache's hit/miss/coalesce/eviction
	// counters and in-flight gauges.
	CacheStats = cache.Stats
	// CacheSnapshot is ClusterView.Cache: CacheStats plus whether the
	// manager has a cache configured at all.
	CacheSnapshot = core.CacheSnapshot
)

// Sentinels for units that cannot be cached; match with errors.Is.
var (
	// ErrUncacheable is the base cause UnitKey reports for descriptions
	// without a cacheable identity; such units always execute.
	ErrUncacheable = cache.ErrUncacheable
	// ErrCacheNoOutputs marks the concrete case: no declared Outputs
	// means no replayable result. Wraps ErrUncacheable.
	ErrCacheNoOutputs = cache.ErrNoOutputs
)

// WithResultCache equips the Unit-Manager with a content-addressed
// result cache bounded by capacityBytes of cached output bytes (<= 0:
// unbounded). A submission whose UnitKey matches a completed unit
// finishes immediately, its declared Outputs staged as ordinary
// replicas, without entering the bind loop; a submission identical to a
// unit still executing parks in UnitPendingResult and completes when
// the leader does. A failed leader releases its waiters to execute
// independently and caches nothing — never a poisoned entry. The cache
// is strictly opt-in: without this option the manager is unchanged.
//
// The determinism contract is the application's: under a result cache,
// Executable + Arguments + input Data-Units must fully determine the
// declared outputs (the simulated Body is not part of the key). Read
// ClusterView.Cache for effectiveness counters.
func WithResultCache(capacityBytes int64) UnitManagerOption {
	return core.WithResultCache(capacityBytes)
}

// UnitKey derives the content address the result cache keys a unit by:
// a digest over Executable, Arguments, the input Data-Units (logical
// name + size, sorted — declaration order does not matter) and the
// declared output Data-Units. Resource demands (Cores, MemoryMB,
// Launch) and staging byte counts are excluded: they change how fast a
// unit runs, never what it produces. Units declaring no Outputs are
// uncacheable (ErrCacheNoOutputs, wrapping ErrUncacheable).
func UnitKey(d ComputeUnitDescription) (CacheKey, error) {
	return core.UnitKey(d)
}

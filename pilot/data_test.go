package pilot_test

import (
	"errors"
	"fmt"
	"slices"
	"testing"
	"time"

	"repro/internal/hdfs"
	"repro/internal/saga"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/pilot"
)

// toyDataBackend is the conformance suite's fourth backend, registered
// through the public API: a volume-backed store over whatever Volume the
// description carries — no internal/data changes required.
type toyDataBackend struct{}

func (toyDataBackend) Name() string { return "toy-vol" }

func (toyDataBackend) Provision(_ *sim.Engine, ft *saga.FileTransfer, d pilot.DataPilotDescription) (pilot.DataStore, error) {
	if d.Volume == nil {
		return nil, fmt.Errorf("toy-vol pilot %s needs a volume", d.Label)
	}
	return pilot.NewVolumeDataStore(ft, "toy:"+d.Label, "toy-vol", d.Volume, d.CapacityBytes), nil
}

func registerToyDataBackend(t *testing.T) {
	t.Helper()
	err := pilot.RegisterDataBackend("toy-vol", func() pilot.DataBackend { return toyDataBackend{} })
	if err != nil && !slices.Contains(pilot.DataBackends(), "toy-vol") {
		t.Fatal(err)
	}
}

// dataEnv is one conformance environment: a machine, a session, and a
// per-backend data-pilot description builder.
type dataEnv struct {
	*testEnv
	dm *pilot.DataManager
	fs *hdfs.FileSystem
}

func newDataEnv(t *testing.T) *dataEnv {
	t.Helper()
	e := newTestEnv(t, 4)
	fs, err := hdfs.New(e.eng, hdfs.DefaultConfig(), e.machine.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	return &dataEnv{testEnv: e, dm: pilot.NewDataManager(e.session), fs: fs}
}

// pilotDesc builds a data-pilot description for the named backend.
func (e *dataEnv) pilotDesc(t *testing.T, backend, label string) pilot.DataPilotDescription {
	t.Helper()
	d := pilot.DataPilotDescription{Backend: backend, Label: label}
	switch backend {
	case pilot.DataBackendLustre:
		d.Lustre = e.machine.Lustre
	case pilot.DataBackendHDFS:
		d.HDFS = e.fs
	case pilot.DataBackendMem:
		d.CapacityBytes = 1 << 30
	case "toy-vol":
		d.Volume = storage.NewLocalDisk(e.eng, "toyvol:"+label, 300e6, time.Millisecond)
	default:
		t.Fatalf("no description builder for data backend %q", backend)
	}
	return d
}

// conformanceBackends returns every registered backend the suite runs
// against; the toy one is registered here so the list always includes
// it.
func conformanceBackends(t *testing.T) []string {
	t.Helper()
	registerToyDataBackend(t)
	names := pilot.DataBackends()
	for _, want := range []string{
		pilot.DataBackendLustre, pilot.DataBackendHDFS, pilot.DataBackendMem, "toy-vol",
	} {
		if !slices.Contains(names, want) {
			t.Fatalf("DataBackends() = %v, missing %q", names, want)
		}
	}
	return names
}

// placeTwo stages two units over two pilots of the backend and returns
// the replica label sequences (placement fingerprint).
func placeTwo(t *testing.T, backend string) [][]string {
	t.Helper()
	e := newDataEnv(t)
	a, err := e.dm.AddPilot(e.pilotDesc(t, backend, "a"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.dm.AddPilot(e.pilotDesc(t, backend, "b"))
	if err != nil {
		t.Fatal(err)
	}
	var placements [][]string
	e.run(t, func(p *sim.Proc) {
		sizes := []int64{96 << 20, 32 << 20}
		for i, size := range sizes {
			du, err := e.dm.Submit(p, pilot.DataUnitDescription{
				Name: fmt.Sprintf("/c/unit-%d", i), SizeBytes: size, Replication: 2,
			})
			if err != nil {
				t.Error(err)
				return
			}
			if du.State() != pilot.DataReplicated {
				t.Errorf("%s: unit %d state %v after Submit", backend, i, du.State())
			}
			var labels []string
			for _, dp := range du.Replicas() {
				labels = append(labels, dp.Label())
				// No bytes lost: every replica store holds the full size.
				if got := dp.Store().ObjectBytes(du.Name()); got != size {
					t.Errorf("%s: replica on %s holds %d bytes, want %d", backend, dp.Label(), got, size)
				}
			}
			// Replication honored: exactly min(Replication, pilots).
			if len(labels) != 2 {
				t.Errorf("%s: unit %d has %d replicas, want 2", backend, i, len(labels))
			}
			placements = append(placements, labels)
		}
		// Both stores account for both units.
		wantUsed := int64(96<<20 + 32<<20)
		for _, dp := range []*pilot.DataPilot{a, b} {
			if got := dp.Store().UsedBytes(); got != wantUsed {
				t.Errorf("%s: store %s used %d bytes, want %d", backend, dp.Label(), got, wantUsed)
			}
		}
		// Over-replication caps at the pilot count, like HDFS.
		over, err := e.dm.Submit(p, pilot.DataUnitDescription{
			Name: "/c/over", SizeBytes: 1 << 20, Replication: 5,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if got := len(over.Replicas()); got != 2 {
			t.Errorf("%s: replication 5 over 2 pilots placed %d replicas, want 2", backend, got)
		}
	})
	return placements
}

// TestDataBackendConformance runs the invariants every registered data
// backend must uphold: no bytes lost, replication count honored,
// deterministic placement, and stage-in completing before the consuming
// Compute-Unit reaches UnitExecuting.
func TestDataBackendConformance(t *testing.T) {
	for _, backend := range conformanceBackends(t) {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			t.Run("BytesAndReplication", func(t *testing.T) {
				placeTwo(t, backend)
			})
			t.Run("DeterministicPlacement", func(t *testing.T) {
				p1, p2 := placeTwo(t, backend), placeTwo(t, backend)
				if len(p1) != len(p2) {
					t.Fatalf("placement runs differ in length: %v vs %v", p1, p2)
				}
				for i := range p1 {
					if !slices.Equal(p1[i], p2[i]) {
						t.Fatalf("placement not deterministic: %v vs %v", p1, p2)
					}
				}
			})
			t.Run("StageInBeforeRunning", func(t *testing.T) {
				testStageInBeforeRunning(t, backend)
			})
		})
	}
}

// testStageInBeforeRunning submits a Compute-Unit referencing a staged
// Data-Unit and checks the ordering contract: the input is Replicated
// and the unit passed UnitStagingInput before it reached UnitExecuting.
func testStageInBeforeRunning(t *testing.T, backend string) {
	e := newDataEnv(t)
	dp, err := e.dm.AddPilot(e.pilotDesc(t, backend, "near"))
	if err != nil {
		t.Fatal(err)
	}
	stateInBody := pilot.DataNew
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 2, Runtime: time.Hour,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := pl.AttachDataPilot(dp); err != nil {
			t.Error(err)
			return
		}
		um := newUM(t, e.session, pilot.WithScheduler(pilot.SchedulerCoLocate))
		if err := um.AddPilot(pl); err != nil {
			t.Error(err)
			return
		}
		du, err := e.dm.Submit(p, pilot.DataUnitDescription{
			Name: "/c/input", SizeBytes: 64 << 20, Affinity: "near",
		})
		if err != nil {
			t.Error(err)
			return
		}
		units, err := um.Submit(p, []pilot.ComputeUnitDescription{{
			Name:   "consumer",
			Inputs: []pilot.DataRef{{Unit: du}},
			Body: func(bp *sim.Proc, ctx *pilot.UnitContext) {
				stateInBody = du.State()
			},
		}})
		if err != nil {
			t.Error(err)
			return
		}
		um.WaitAll(p, units)
		u := units[0]
		if u.State() != pilot.UnitDone {
			t.Fatalf("%s: consumer finished %v: %v", backend, u.State(), u.Err)
		}
		staged, ok1 := u.Timestamps[pilot.UnitStagingInput]
		running, ok2 := u.Timestamps[pilot.UnitExecuting]
		if !ok1 || !ok2 || staged > running {
			t.Errorf("%s: stage-in at %v not before RUNNING at %v", backend, staged, running)
		}
		replicated, ok := du.Timestamps[pilot.DataReplicated]
		if !ok || replicated > running {
			t.Errorf("%s: input replicated at %v, after RUNNING at %v", backend, replicated, running)
		}
		pl.Cancel()
	})
	if stateInBody != pilot.DataReplicated {
		t.Errorf("%s: body observed input state %v, want REPLICATED", backend, stateInBody)
	}
}

// TestDataRegistryHygiene pins the public data-backend registry rules
// and the sentinel errors.
func TestDataRegistryHygiene(t *testing.T) {
	registerToyDataBackend(t)
	if err := pilot.RegisterDataBackend("toy-vol", func() pilot.DataBackend { return toyDataBackend{} }); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := pilot.RegisterDataBackend("", func() pilot.DataBackend { return toyDataBackend{} }); err == nil {
		t.Error("empty name accepted")
	}
	if err := pilot.RegisterDataBackend("nil-factory", nil); err == nil {
		t.Error("nil factory accepted")
	}
	e := newDataEnv(t)
	if _, err := e.dm.AddPilot(pilot.DataPilotDescription{Backend: "no-such"}); !errors.Is(err, pilot.ErrUnknownDataBackend) {
		t.Errorf("unknown backend error = %v, want pilot.ErrUnknownDataBackend", err)
	}
	e.run(t, func(p *sim.Proc) {
		du, err := e.dm.Submit(p, pilot.DataUnitDescription{Name: "/nowhere", SizeBytes: 1})
		if !errors.Is(err, pilot.ErrNoDataPilots) {
			t.Errorf("Submit with no data pilots = %v, want pilot.ErrNoDataPilots", err)
		}
		if du == nil || du.State() != pilot.DataFailed || !errors.Is(du.Err, pilot.ErrNoDataPilots) {
			t.Error("failed staging did not leave the unit FAILED with the sentinel cause")
		}
	})
}

// TestComputeUnitFailsOnUnavailableInput: a Compute-Unit whose input
// data unit failed staging fails with ErrDataUnavailable instead of
// hanging or running without its data.
func TestComputeUnitFailsOnUnavailableInput(t *testing.T) {
	e := newDataEnv(t)
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 1, Runtime: time.Hour,
		})
		if err != nil {
			t.Error(err)
			return
		}
		um := newUM(t, e.session)
		if err := um.AddPilot(pl); err != nil {
			t.Error(err)
			return
		}
		// No data pilots: staging fails, leaving the unit FAILED.
		du, _ := e.dm.Submit(p, pilot.DataUnitDescription{Name: "/gone", SizeBytes: 1 << 20})
		units, err := um.Submit(p, []pilot.ComputeUnitDescription{{
			Name:   "orphan-consumer",
			Inputs: []pilot.DataRef{{Unit: du}},
		}})
		if err != nil {
			t.Error(err)
			return
		}
		um.WaitAll(p, units)
		if units[0].State() != pilot.UnitFailed || !errors.Is(units[0].Err, pilot.ErrDataUnavailable) {
			t.Errorf("consumer = %v (%v), want FAILED with ErrDataUnavailable", units[0].State(), units[0].Err)
		}
		pl.Cancel()
	})
}

// TestOutputFeedsInputWithoutDeadlock: a consumer submitted before its
// producer, both sized to the whole pilot. The consumer must wait for
// its input WITHOUT holding cores — otherwise the producer could never
// run and the pipeline would deadlock.
func TestOutputFeedsInputWithoutDeadlock(t *testing.T) {
	e := newDataEnv(t)
	dp, err := e.dm.AddPilot(pilot.DataPilotDescription{
		Backend: pilot.DataBackendMem, Label: "buf", CapacityBytes: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	produced := false
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 1, Runtime: time.Hour,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := pl.AttachDataPilot(dp); err != nil {
			t.Error(err)
			return
		}
		um := newUM(t, e.session)
		if err := um.AddPilot(pl); err != nil {
			t.Error(err)
			return
		}
		inter, err := e.dm.Declare(pilot.DataUnitDescription{
			Name: "/pipe/intermediate", SizeBytes: 32 << 20, Affinity: "buf",
		})
		if err != nil {
			t.Error(err)
			return
		}
		// Consumer first, producer second — both need all 8 cores.
		units, err := um.Submit(p, []pilot.ComputeUnitDescription{
			{
				Name: "consumer", Cores: 8,
				Inputs: []pilot.DataRef{{Unit: inter}},
				Body: func(bp *sim.Proc, ctx *pilot.UnitContext) {
					if !produced {
						t.Error("consumer ran before the producer staged its output")
					}
				},
			},
			{
				Name: "producer", Cores: 8,
				Outputs: []pilot.DataRef{{Unit: inter}},
				Body: func(bp *sim.Proc, ctx *pilot.UnitContext) {
					bp.Sleep(2 * time.Second)
					produced = true
				},
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		um.WaitAll(p, units)
		for _, u := range units {
			if u.State() != pilot.UnitDone {
				t.Errorf("unit %s = %v (%v), want DONE", u.Desc.Name, u.State(), u.Err)
			}
		}
		if inter.State() != pilot.DataReplicated {
			t.Errorf("intermediate data unit ended %v, want REPLICATED", inter.State())
		}
		pl.Cancel()
	})
}

// TestProducerFailureCancelsOutputs: a producer that fails before
// staging its declared output cancels it, so a parked consumer fails
// with ErrDataUnavailable instead of waiting forever.
func TestProducerFailureCancelsOutputs(t *testing.T) {
	e := newDataEnv(t)
	dp, err := e.dm.AddPilot(pilot.DataPilotDescription{
		Backend: pilot.DataBackendMem, Label: "buf", CapacityBytes: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 1, Runtime: time.Hour,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := pl.AttachDataPilot(dp); err != nil {
			t.Error(err)
			return
		}
		um := newUM(t, e.session)
		if err := um.AddPilot(pl); err != nil {
			t.Error(err)
			return
		}
		inter, err := e.dm.Declare(pilot.DataUnitDescription{
			Name: "/pipe/never", SizeBytes: 1 << 20,
		})
		if err != nil {
			t.Error(err)
			return
		}
		units, err := um.Submit(p, []pilot.ComputeUnitDescription{
			{
				// The producer demands more cores than any node has, so
				// it fails in agent scheduling before staging outputs.
				Name: "doomed-producer", Cores: 64,
				Outputs: []pilot.DataRef{{Unit: inter}},
			},
			{
				Name:   "starved-consumer",
				Inputs: []pilot.DataRef{{Unit: inter}},
			},
		})
		if err != nil {
			t.Error(err)
			return
		}
		um.WaitAll(p, units)
		if units[0].State() != pilot.UnitFailed {
			t.Errorf("producer = %v, want FAILED", units[0].State())
		}
		if inter.State() != pilot.DataCanceled {
			t.Errorf("orphan output = %v, want CANCELED", inter.State())
		}
		if units[1].State() != pilot.UnitFailed || !errors.Is(units[1].Err, pilot.ErrDataUnavailable) {
			t.Errorf("consumer = %v (%v), want FAILED with ErrDataUnavailable", units[1].State(), units[1].Err)
		}
		pl.Cancel()
	})
}

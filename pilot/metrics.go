package pilot

import (
	"repro/internal/metrics"
	"repro/internal/obs"
)

// The telemetry-plane types, re-exported as the public metrics API. A
// MetricsRegistry holds labeled instruments (counters, gauges,
// histograms); a MetricsBridge derives the standard instrument set from
// a Recorder's event stream; a MetricsServer exposes the registry live
// over HTTP. See the package documentation's Observability section for
// the instrument set and label conventions.
type (
	// MetricsRegistry is a labeled-instrument registry rendering as
	// Prometheus text exposition and as a JSON snapshot.
	MetricsRegistry = metrics.Registry
	// MetricsBridge folds recorder events into a MetricsRegistry.
	MetricsBridge = obs.Bridge
	// MetricsServer is a live /metrics + /debug/pilot HTTP endpoint.
	MetricsServer = obs.MetricsServer
)

// NewMetricsRegistry creates an empty labeled-instrument registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// NewMetricsBridge declares the standard instrument set on reg and
// returns the bridge feeding it. Hook it into a recorder with
// Recorder.OnRecord(bridge.Apply) to populate the registry live, or
// replay a finished stream with MetricsFromEvents.
func NewMetricsBridge(reg *MetricsRegistry) *MetricsBridge { return obs.NewBridge(reg) }

// MetricsFromEvents replays a recorded event stream into a fresh
// registry — the after-the-fact way to get per-pilot accounting out of
// a finished run.
func MetricsFromEvents(events []TraceEvent) *MetricsRegistry {
	return obs.MetricsFromEvents(events)
}

// ServeMetrics starts a live exposition endpoint for reg on addr
// (":9090", "127.0.0.1:0", ...): Prometheus text at /metrics, the JSON
// snapshot at /debug/pilot. Close the returned server to release the
// port.
func ServeMetrics(addr string, reg *MetricsRegistry) (*MetricsServer, error) {
	return obs.ServeMetrics(addr, reg)
}

package pilot_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hpc"
	"repro/internal/sim"
	"repro/pilot"
)

// TestWithMetricsAddrEndToEnd drives a workload through the public API
// with a live telemetry endpoint and scrapes it: /metrics must expose
// per-pilot labeled accounting in Prometheus text, /debug/pilot the
// same registry as JSON.
func TestWithMetricsAddrEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	m := cluster.New(eng, testSpec(2))
	b := hpc.NewBatch(m, hpc.Config{
		SchedCycle:      10 * time.Second,
		Prolog:          2 * time.Second,
		MinQueueWait:    time.Second,
		DefaultWallTime: 4 * time.Hour,
		Seed:            3,
	})
	s := pilot.NewSession(eng,
		pilot.WithProfile(fastProfile()), pilot.WithSeed(42),
		pilot.WithMetricsAddr("127.0.0.1:0"))
	if s.Recorder() == nil {
		t.Fatal("WithMetricsAddr did not ensure a recorder")
	}
	if s.Metrics() == nil || s.MetricsServer() == nil {
		t.Fatal("WithMetricsAddr did not attach registry and server")
	}
	defer s.MetricsServer().Close()
	if err := s.AddResource(&pilot.Resource{Name: "tm", Machine: m, Batch: b}); err != nil {
		t.Fatal(err)
	}
	e := &testEnv{eng: eng, machine: m, session: s}
	const units = 4
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(s)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 2, Runtime: time.Hour, Mode: pilot.ModeHPC,
		})
		if err != nil {
			t.Error(err)
			return
		}
		pl.WaitState(p, pilot.PilotActive)
		um := newUM(t, s)
		um.AddPilot(pl)
		var descs []pilot.ComputeUnitDescription
		for i := 0; i < units; i++ {
			descs = append(descs, pilot.ComputeUnitDescription{
				Cores: 1,
				Body:  func(bp *sim.Proc, ctx *pilot.UnitContext) { bp.Sleep(5 * time.Second) },
			})
		}
		us, err := um.Submit(p, descs)
		if err != nil {
			t.Error(err)
			return
		}
		um.WaitAll(p, us)
		pl.Cancel()
	})

	if got := s.Metrics().Total("pilot_units_done"); got != units {
		t.Fatalf("pilot_units_done total = %v; want %d", got, units)
	}

	base := "http://" + s.MetricsServer().Addr()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`pilot_units_done{pilot="pilot.0001",scheduler="round-robin"} 4`,
		"pilot_units_held 0",
		`bind_latency_seconds_count{pilot="pilot.0001",scheduler="round-robin"} 4`,
		"# TYPE bind_latency_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(base + "/debug/pilot")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc struct {
		Instruments []struct {
			Name string `json:"name"`
		} `json:"instruments"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/pilot not valid JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, in := range doc.Instruments {
		names[in.Name] = true
	}
	for _, want := range []string{"pilot_units_done", "pilot_units_held", "bind_latency_seconds"} {
		if !names[want] {
			t.Errorf("/debug/pilot missing instrument %s", want)
		}
	}
}

package pilot_test

import (
	"errors"
	"fmt"
	"slices"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/pilot"
)

// TestDataPilotFailureMidRun is the data-side failover check: an
// attached data store is killed while compute units are still in
// flight. Units whose input survives on another replica complete; a
// unit whose input lost its last replica fails with ErrDataUnavailable
// — and only that one.
func TestDataPilotFailureMidRun(t *testing.T) {
	e := newTestEnv(t, 4)
	dm := pilot.NewDataManager(e.session)
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 2, Runtime: time.Hour, Mode: pilot.ModeHPC,
		})
		if err != nil {
			t.Error(err)
			return
		}
		attached, err := dm.AddPilot(pilot.DataPilotDescription{
			Backend: pilot.DataBackendMem, Label: "attached", CapacityBytes: 1 << 30,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := pl.AttachDataPilot(attached); err != nil {
			t.Error(err)
			return
		}
		if _, err := dm.AddPilot(pilot.DataPilotDescription{
			Backend: pilot.DataBackendMem, Label: "other", CapacityBytes: 1 << 30,
		}); err != nil {
			t.Error(err)
			return
		}
		// One input with a surviving replica on the other store, one whose
		// only replica lives on the store about to die.
		shared, err := dm.Submit(p, pilot.DataUnitDescription{
			Name: "/f/shared", SizeBytes: 32 << 20, Replication: 2, Affinity: "attached",
		})
		if err != nil {
			t.Error(err)
			return
		}
		solo, err := dm.Submit(p, pilot.DataUnitDescription{
			Name: "/f/solo", SizeBytes: 32 << 20, Replication: 1, Affinity: "attached",
		})
		if err != nil {
			t.Error(err)
			return
		}
		um := newUM(t, e.session)
		um.AddPilot(pl)
		// Submit while the pilot is still coming up, then kill the
		// attached store: the units are mid-flight, not yet staged.
		units, err := um.Submit(p, []pilot.ComputeUnitDescription{
			{Name: "reads-shared", Inputs: []pilot.DataRef{{Unit: shared}}},
			{Name: "reads-solo", Inputs: []pilot.DataRef{{Unit: solo}}},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := dm.FailPilot(p, attached); err != nil {
			t.Error(err)
			return
		}
		um.WaitAll(p, units)
		if st := units[0].State(); st != pilot.UnitDone {
			t.Errorf("unit with a surviving replica finished %v: %v", st, units[0].Err)
		}
		if st := units[1].State(); st != pilot.UnitFailed || !errors.Is(units[1].Err, pilot.ErrDataUnavailable) {
			t.Errorf("unit with no surviving replica finished %v (err %v), want FAILED with ErrDataUnavailable",
				st, units[1].Err)
		}
		if shared.ReplicaOn(attached) {
			t.Error("failed store still counted as holding the shared input")
		}
		pl.Cancel()
	})
}

// TestReplicaCacheMakesSecondPassLocal is the iterative-workload check:
// the partitions live on a shared-Lustre data pilot, the compute pilot
// has an attached in-memory store. The first pass reads remotely and
// leaves opportunistic cached replicas behind; the second pass reads
// every partition from the attached store — fully local, and faster.
func TestReplicaCacheMakesSecondPassLocal(t *testing.T) {
	const parts = 4
	e := newTestEnv(t, 4)
	dm := pilot.NewDataManager(e.session)
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(e.session)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 2, Runtime: time.Hour, Mode: pilot.ModeHPC,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := dm.AddPilot(pilot.DataPilotDescription{
			Backend: pilot.DataBackendLustre, Label: "shared", Lustre: e.machine.Lustre,
		}); err != nil {
			t.Error(err)
			return
		}
		cache, err := dm.AddPilot(pilot.DataPilotDescription{
			Backend: pilot.DataBackendMem, Label: "cache", CapacityBytes: 2 << 30,
		})
		if err != nil {
			t.Error(err)
			return
		}
		if err := pl.AttachDataPilot(cache); err != nil {
			t.Error(err)
			return
		}
		var inputs []*pilot.DataUnit
		for i := 0; i < parts; i++ {
			du, err := dm.Submit(p, pilot.DataUnitDescription{
				Name:      fmt.Sprintf("/iter/part-%d", i),
				SizeBytes: 128 << 20,
				Affinity:  "shared",
			})
			if err != nil {
				t.Error(err)
				return
			}
			inputs = append(inputs, du)
		}
		um := newUM(t, e.session)
		um.AddPilot(pl)
		if !pl.WaitState(p, pilot.PilotActive) {
			t.Errorf("pilot ended %v", pl.State())
			return
		}
		pass := func() time.Duration {
			descs := make([]pilot.ComputeUnitDescription, parts)
			for i := range descs {
				descs[i] = pilot.ComputeUnitDescription{
					Inputs: []pilot.DataRef{{Unit: inputs[i]}},
				}
			}
			start := p.Now()
			units, err := um.Submit(p, descs)
			if err != nil {
				t.Error(err)
				return 0
			}
			um.WaitAll(p, units)
			for _, u := range units {
				if u.State() != pilot.UnitDone {
					t.Errorf("unit %s finished %v: %v", u.ID, u.State(), u.Err)
				}
			}
			return p.Now() - start
		}
		first := pass()
		for _, du := range inputs {
			if !du.CachedOn(cache) {
				t.Errorf("input %s not cached on the attached store after the first pass", du.Name())
			}
			if slices.Contains(du.Replicas(), cache) {
				t.Errorf("cached copy of %s counted as a managed replica", du.Name())
			}
			if !du.ReplicaOn(cache) {
				t.Errorf("cached copy of %s not readable", du.Name())
			}
		}
		second := pass()
		if second >= first {
			t.Errorf("second pass (%v) not faster than the first (%v) despite local caches", second, first)
		}
		pl.Cancel()
	})
}

// TestDataAwarePolicyRegistered: the new built-in is in the registry
// alongside the others and selectable by name.
func TestDataAwarePolicyRegistered(t *testing.T) {
	if !slices.Contains(pilot.AutoscalePolicies(), pilot.AutoscaleDataAware) {
		t.Fatalf("AutoscalePolicies() = %v, missing %q", pilot.AutoscalePolicies(), pilot.AutoscaleDataAware)
	}
}

package pilot_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hpc"
	"repro/internal/sim"
	"repro/pilot"
)

// TestRecorderEndToEnd drives a small workload through the public API
// with a flight recorder attached and checks the event stream carries
// the full causal chain: pilot states, bind decisions, unit states, the
// engine trace, the scheduler invariants, live gauges and the Chrome
// trace export.
func TestRecorderEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	rec := pilot.NewRecorder(eng)
	m := cluster.New(eng, testSpec(2))
	b := hpc.NewBatch(m, hpc.Config{
		SchedCycle:      10 * time.Second,
		Prolog:          2 * time.Second,
		MinQueueWait:    time.Second,
		DefaultWallTime: 4 * time.Hour,
		Seed:            3,
	})
	s := pilot.NewSession(eng,
		pilot.WithProfile(fastProfile()), pilot.WithSeed(42), pilot.WithRecorder(rec))
	if s.Recorder() != rec {
		t.Fatal("WithRecorder did not attach the recorder")
	}
	if err := s.AddResource(&pilot.Resource{Name: "tm", Machine: m, Batch: b}); err != nil {
		t.Fatal(err)
	}
	e := &testEnv{eng: eng, machine: m, session: s}
	const units = 4
	e.run(t, func(p *sim.Proc) {
		pm := pilot.NewPilotManager(s)
		pl, err := pm.Submit(p, pilot.PilotDescription{
			Resource: "tm", Nodes: 2, Runtime: time.Hour, Mode: pilot.ModeHPC,
		})
		if err != nil {
			t.Error(err)
			return
		}
		pl.WaitState(p, pilot.PilotActive)
		um := newUM(t, s)
		um.AddPilot(pl)
		var descs []pilot.ComputeUnitDescription
		for i := 0; i < units; i++ {
			descs = append(descs, pilot.ComputeUnitDescription{
				Cores: 2,
				Body:  func(bp *sim.Proc, ctx *pilot.UnitContext) { bp.Sleep(5 * time.Second) },
			})
		}
		us, err := um.Submit(p, descs)
		if err != nil {
			t.Error(err)
			return
		}
		um.WaitAll(p, us)
		pl.Cancel()
	})

	events := rec.Events()
	if pilot.DoneUnits(events) != units {
		t.Fatalf("DONE units in stream = %d, want %d", pilot.DoneUnits(events), units)
	}
	if got := rec.Count(pilot.EventBind); got != units {
		t.Errorf("bind events = %d, want %d", got, units)
	}
	if rec.Count(pilot.EventPilotState) == 0 {
		t.Error("no pilot-state events recorded")
	}
	if rec.Count(pilot.EventTrace) == 0 {
		t.Error("engine Tracef lines did not land in the recorder")
	}
	if err := pilot.VerifyBinds(events); err != nil {
		t.Errorf("bind invariants: %v", err)
	}
	// Every bind names the policy and a pilot; unit DONE events carry
	// the bound pilot so the trace exporter can track them.
	for _, ev := range events {
		if ev.Kind == pilot.EventBind && (ev.Pilot == "" || ev.Policy == "") {
			t.Fatalf("bind event missing pilot/policy: %+v", ev)
		}
		if ev.Kind == pilot.EventUnitState && ev.State == "DONE" && ev.Pilot == "" {
			t.Fatalf("DONE unit-state event missing pilot: %+v", ev)
		}
	}

	series := rec.Series()
	if series.Len() == 0 {
		t.Fatal("no gauge samples recorded")
	}
	peakRunning := 0
	for _, g := range series.Samples() {
		if g.RunningUnits > peakRunning {
			peakRunning = g.RunningUnits
		}
	}
	if peakRunning == 0 {
		t.Error("gauges never saw a running unit")
	}
	if last := series.Last(); last.RunningUnits != 0 || last.QueueDepth != 0 {
		t.Errorf("final gauge sample not drained: %+v", last)
	}

	var buf bytes.Buffer
	if err := pilot.WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	spans := 0
	for _, te := range tf.TraceEvents {
		if te.Ph == "X" {
			spans++
		}
	}
	if spans != units {
		t.Fatalf("trace spans = %d, want %d (== completed units)", spans, units)
	}
}

// TestRecorderOffCostsNothingVisible pins the opt-in contract: a
// session without WithRecorder records nothing and behaves identically.
func TestRecorderOffNoRecorder(t *testing.T) {
	e := newTestEnv(t, 1)
	if e.session.Recorder() != nil {
		t.Fatal("session without WithRecorder has a recorder attached")
	}
}

// Pilot-Data: first-class data units with staging, replication and
// compute–data co-scheduling, re-exported from internal/data. See the
// package documentation in doc.go for the overview.

package pilot

import (
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/saga"
	"repro/internal/storage"
)

type (
	// DataManager owns data pilots and drives Data-Units through
	// staging and replication — the Pilot-Data analogue of the
	// UnitManager. Build one with NewDataManager.
	DataManager = data.Manager
	// DataPilot is a provisioned store on a storage backend, holding
	// Data-Unit replicas; attach one to a compute pilot with
	// Pilot.AttachDataPilot.
	DataPilot = data.Pilot
	// DataUnit is a logical dataset with managed replicas and its own
	// state machine (DataNew → DataStagingIn → DataReplicated → final).
	DataUnit = data.Unit
	// DataPilotDescription describes a data-pilot request: the backend
	// and the storage it binds to.
	DataPilotDescription = data.PilotDescription
	// DataUnitDescription describes one Data-Unit: logical name, size,
	// replication target, pilot affinity, staging source.
	DataUnitDescription = data.UnitDescription
	// DataUnitState follows the Pilot-Data state model.
	DataUnitState = data.UnitState
	// DataUnitCallback observes a Data-Unit entering a state, through
	// DataUnit.OnStateChange.
	DataUnitCallback = data.UnitCallback

	// DataBackend is the pluggable storage seam data pilots provision
	// through; see RegisterDataBackend.
	DataBackend = data.Backend
	// DataStore is a provisioned data-backend instance — the place a
	// data pilot keeps its replicas.
	DataStore = data.Store

	// DataRef is a typed reference from a Compute-Unit to a Data-Unit
	// (ComputeUnitDescription.Inputs / Outputs).
	DataRef = core.DataRef
)

// Data-Unit states in lifecycle order.
const (
	DataNew        = data.StateNew
	DataStagingIn  = data.StateStagingIn
	DataReplicated = data.StateReplicated
	DataDone       = data.StateDone
	DataCanceled   = data.StateCanceled
	DataFailed     = data.StateFailed
)

// The built-in data backends.
const (
	// DataBackendLustre keeps replicas on the shared parallel
	// filesystem: reachable from every pilot, every read pays the
	// contended Lustre path — the remote-staging mode.
	DataBackendLustre = data.BackendLustre
	// DataBackendHDFS keeps replicas in an HDFS filesystem (typically a
	// compute pilot's Mode I cluster): co-located reads are node-local.
	DataBackendHDFS = data.BackendHDFS
	// DataBackendMem pins replicas in allocation memory — the
	// Pilot-in-Memory tier.
	DataBackendMem = data.BackendMem
)

// The Pilot-Data sentinel errors, matchable with errors.Is like the
// compute sentinels in errors.go.
var (
	// ErrUnknownDataBackend: a DataPilotDescription named a backend
	// never registered through RegisterDataBackend.
	ErrUnknownDataBackend = data.ErrUnknownBackend
	// ErrNoDataPilots: staging found no data pilot able to hold a
	// replica (none added, or none with capacity).
	ErrNoDataPilots = data.ErrNoPilots
	// ErrDataUnavailable: a Data-Unit cannot be read — staging failed
	// or was canceled, or the unit was removed. Compute-Units whose
	// Inputs reference such a unit fail with this cause.
	ErrDataUnavailable = data.ErrUnavailable
	// ErrDataStoreFull: an ingest would overflow the store's capacity.
	ErrDataStoreFull = data.ErrStoreFull
)

// NewDataManager creates a Pilot-Data manager on the session, staging
// over the session's SAGA transfer facade:
//
//	dm := pilot.NewDataManager(session)
//	dp, err := dm.AddPilot(pilot.DataPilotDescription{
//		Backend: pilot.DataBackendHDFS, Label: "p0", HDFS: pl.HDFS(),
//	})
//	du, err := dm.Submit(p, pilot.DataUnitDescription{
//		Name: "/data/part-00", SizeBytes: 512 << 20, Affinity: "p0",
//	})
//	pl.AttachDataPilot(dp)
//	// ComputeUnitDescription{Inputs: []pilot.DataRef{{Unit: du}}, ...}
func NewDataManager(s *Session) *DataManager { return core.NewDataManager(s) }

// RegisterDataBackend adds a data backend under name, the key a
// DataPilotDescription selects it by — the Pilot-Data analogue of
// RegisterBackend, RegisterUnitScheduler and RegisterAutoscalePolicy.
// Volume-backed backends can provision through NewVolumeDataStore:
//
//	pilot.RegisterDataBackend("scratch", func() pilot.DataBackend { return scratchBackend{} })
//
// Registration fails on nil factories, empty names, and duplicates.
func RegisterDataBackend(name string, factory func() DataBackend) error {
	return data.RegisterBackend(name, factory)
}

// DataBackends lists the registered data-backend names, sorted. The
// built-ins ("hdfs", "lustre", "mem") are always present.
func DataBackends() []string { return data.Backends() }

// NewVolumeDataStore builds a DataStore over an arbitrary volume — the
// one-liner custom data backends provision from (see
// RegisterDataBackend). ft is the transfer facade handed to
// DataBackend.Provision; staging into the store runs over its pipelined
// copy.
func NewVolumeDataStore(ft *saga.FileTransfer, name, backend string, vol storage.Volume, capacityBytes int64) DataStore {
	return data.NewVolumeStore(ft, name, backend, vol, capacityBytes)
}

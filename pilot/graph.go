// Workload DAGs: the UnitGraph subsystem, re-exported from
// internal/graph. See the package documentation in doc.go for the
// overview.

package pilot

import (
	"repro/internal/graph"
)

type (
	// UnitGraph is a DAG of Compute-Units connected by data edges — a
	// unit's Inputs referencing another unit's declared Outputs. Build
	// one with NewUnitGraph and UnitGraph.Add, then Submit it to a
	// UnitManager: the manager holds every unit until its input
	// Data-Units are replicated (dependency-aware late binding) and
	// binds by the chosen ordering. Failed producers cancel their
	// still-new outputs, failing orphaned descendants with
	// ErrDataUnavailable.
	UnitGraph = graph.Graph
	// GraphNode is one vertex of a UnitGraph: the named unit, its work
	// estimate (GraphNode.SetWork) and, after validation, its
	// critical-path length.
	GraphNode = graph.Node
	// GraphOrdering selects how a submitted graph ranks its units for
	// the bind loop: OrderCriticalPath or OrderFIFO.
	GraphOrdering = graph.Ordering
	// GraphSubmitOption configures UnitGraph.Submit; see
	// WithGraphOrdering.
	GraphSubmitOption = graph.SubmitOption
)

// The graph bind orderings.
const (
	// OrderCriticalPath (the default) binds the longest remaining chain
	// first: each unit's priority is its work plus the heaviest chain of
	// dependent work below it.
	OrderCriticalPath = graph.OrderCriticalPath
	// OrderFIFO binds in Add order — the flat-bag baseline.
	OrderFIFO = graph.OrderFIFO
)

// The graph sentinel errors, matchable with errors.Is like the compute
// and data sentinels.
var (
	// ErrGraphEmpty: Validate or Submit on a graph with no units.
	ErrGraphEmpty = graph.ErrEmptyGraph
	// ErrGraphDuplicateUnit: two graph units share a name.
	ErrGraphDuplicateUnit = graph.ErrDuplicateUnit
	// ErrGraphDuplicateOutput: one Data-Unit declared as the output of
	// two graph units.
	ErrGraphDuplicateOutput = graph.ErrDuplicateOutput
	// ErrGraphUnknownInput: an input Data-Unit that no graph unit
	// produces and no DataManager has staged — an edge to an unknown
	// unit.
	ErrGraphUnknownInput = graph.ErrUnknownInput
	// ErrGraphCycle: the data edges form a dependency cycle.
	ErrGraphCycle = graph.ErrCycle
	// ErrGraphSubmitted: a second Submit of the same graph.
	ErrGraphSubmitted = graph.ErrAlreadySubmitted
)

// NewUnitGraph creates an empty workload DAG:
//
//	g := pilot.NewUnitGraph()
//	out, _ := dm.Declare(pilot.DataUnitDescription{Name: "/d/map-0", SizeBytes: 64 << 20})
//	g.Add(pilot.ComputeUnitDescription{Name: "map-0", Outputs: []pilot.DataRef{{Unit: out}}})
//	g.Add(pilot.ComputeUnitDescription{Name: "reduce", Inputs: []pilot.DataRef{{Unit: out}}})
//	units, err := g.Submit(p, um) // critical-path ordering by default
func NewUnitGraph() *UnitGraph { return graph.New() }

// WithGraphOrdering selects the bind ordering for UnitGraph.Submit
// (default OrderCriticalPath).
func WithGraphOrdering(o GraphOrdering) GraphSubmitOption {
	return graph.WithOrdering(o)
}

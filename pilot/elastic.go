// Elastic pilots: runtime cluster resizing and the pluggable autoscaler
// subsystem, re-exported from internal/core. See the package
// documentation in doc.go for the overview.

package pilot

import (
	"repro/internal/core"
	"repro/internal/sim"
)

type (
	// ElasticBackend is the optional capability interface of backends
	// whose pilots can resize at runtime; see Pilot.Resize.
	ElasticBackend = core.ElasticBackend
	// ElasticNodeScheduler is implemented by agent schedulers whose
	// node pool can change at runtime (the continuous scheduler).
	ElasticNodeScheduler = core.ElasticNodeScheduler
	// ElasticCapacityScheduler is implemented by agent schedulers that
	// admit against an adjustable aggregate capacity (the YARN
	// scheduler).
	ElasticCapacityScheduler = core.ElasticCapacityScheduler

	// Autoscaler drives one elastic pilot from a pluggable policy.
	Autoscaler = core.Autoscaler
	// AutoscalePolicy decides how an elastic pilot should resize.
	AutoscalePolicy = core.AutoscalePolicy
	// AutoscaleSnapshot is the world view a policy decides on.
	AutoscaleSnapshot = core.AutoscaleSnapshot
	// AutoscalerOption configures NewAutoscaler.
	AutoscalerOption = core.AutoscalerOption
	// ResizeRecord is one applied resize in an Autoscaler's history.
	ResizeRecord = core.ResizeRecord

	// QueueDepthPolicy, UtilizationPolicy and DeadlinePolicy are the
	// built-in autoscale policies, exported so callers can configure
	// them via WithAutoscalePolicyInstance or register tuned variants
	// under their own names.
	QueueDepthPolicy  = core.QueueDepthPolicy
	UtilizationPolicy = core.UtilizationPolicy
	DeadlinePolicy    = core.DeadlinePolicy
)

// PilotResizing marks a Resize in flight; the pilot keeps executing
// units on its current capacity and returns to PilotActive when the
// resize completes.
const PilotResizing = core.PilotResizing

// The built-in autoscale policies selectable through
// WithAutoscalePolicy; see the core constants for their semantics.
const (
	AutoscaleQueueDepth  = core.AutoscaleQueueDepth
	AutoscaleUtilization = core.AutoscaleUtilization
	AutoscaleDeadline    = core.AutoscaleDeadline
)

// NewAutoscaler attaches an autoscaling control loop to the pilot,
// observing demand through the Unit-Manager it serves. The loop retires
// when the pilot reaches a final state, when Stop is called, or on the
// first ErrNotElastic.
func NewAutoscaler(um *UnitManager, pl *Pilot, opts ...AutoscalerOption) (*Autoscaler, error) {
	return core.NewAutoscaler(um, pl, opts...)
}

// WithAutoscalePolicy selects the autoscale policy by registered name
// (default: AutoscaleQueueDepth).
func WithAutoscalePolicy(name string) AutoscalerOption { return core.WithAutoscalePolicy(name) }

// WithAutoscalePolicyInstance supplies a configured policy value
// directly, e.g. &pilot.DeadlinePolicy{Deadline: d}.
func WithAutoscalePolicyInstance(p AutoscalePolicy) AutoscalerOption {
	return core.WithAutoscalePolicyInstance(p)
}

// WithAutoscaleBounds clamps the pilot size to [min, max] nodes.
func WithAutoscaleBounds(min, max int) AutoscalerOption { return core.WithAutoscaleBounds(min, max) }

// WithAutoscaleCooldown enforces a minimum virtual time between applied
// resizes.
func WithAutoscaleCooldown(d sim.Duration) AutoscalerOption { return core.WithAutoscaleCooldown(d) }

// WithAutoscaleInterval adds a periodic re-evaluation every d of
// virtual time on top of the kick-driven wakeups.
func WithAutoscaleInterval(d sim.Duration) AutoscalerOption { return core.WithAutoscaleInterval(d) }

// RegisterAutoscalePolicy adds an autoscale policy under name, the key
// WithAutoscalePolicy selects it by — the elasticity analogue of
// RegisterBackend and RegisterUnitScheduler:
//
//	pilot.RegisterAutoscalePolicy("aggressive", func() pilot.AutoscalePolicy {
//		return &pilot.QueueDepthPolicy{Threshold: 0.25, GrowStep: 2}
//	})
//
// Registration fails on nil factories, empty names, and duplicates.
func RegisterAutoscalePolicy(name string, factory func() AutoscalePolicy) error {
	return core.RegisterAutoscalePolicy(name, factory)
}

// AutoscalePolicies lists the registered autoscale-policy names,
// sorted. The built-ins ("deadline", "queue-depth", "utilization") are
// always present.
func AutoscalePolicies() []string { return core.AutoscalePolicies() }

// The placement fabric: one coherent cluster snapshot shared by every
// placement decision — unit schedulers, autoscale policies, and the
// Pilot-Data co-scheduling signals — re-exported from internal/core.
// See the package documentation in doc.go for the overview.

package pilot

import (
	"repro/internal/core"
)

type (
	// ClusterView is the shared placement snapshot assembled by
	// UnitManager.ClusterView: per-pilot capacity, the waiting/running
	// demand split, attached data-store occupancy, and the input bytes
	// parked behind waiting units. Unit schedulers receive it through
	// Candidate.View; autoscale policies through AutoscaleSnapshot.View.
	ClusterView = core.ClusterView
	// PilotView is one pilot's slice of a ClusterView.
	PilotView = core.PilotView

	// DataAwarePolicy is the built-in autoscale policy that grows the
	// pilot holding the most bytes behind the pending units' Inputs —
	// capacity moves to the data. Exported like the other policy types
	// so callers can configure it via WithAutoscalePolicyInstance.
	DataAwarePolicy = core.DataAwarePolicy
)

// AutoscaleDataAware selects the data-aware autoscale policy through
// WithAutoscalePolicy; see DataAwarePolicy.
const AutoscaleDataAware = core.AutoscaleDataAware

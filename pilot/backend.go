package pilot

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
)

// RegisterBackend adds an execution backend to the registry under
// name (instances the factory constructs should report the same
// string from Name()). The factory is invoked once per submitted
// pilot, so implementations may keep per-pilot state in their
// receiver. A PilotDescription selects the backend by setting Mode to
// the registered name:
//
//	pilot.RegisterBackend("dask", func() pilot.Backend { return &daskBackend{} })
//	pm.Submit(p, pilot.PilotDescription{Resource: "wrangler", Mode: "dask", ...})
//
// Registration fails on nil factories, empty names, and duplicates.
func RegisterBackend(name string, factory func() Backend) error {
	return core.RegisterBackend(name, factory)
}

// Backends lists the registered backend names, sorted. The built-ins
// ("hpc", "yarn", "spark") are always present.
func Backends() []string { return core.Backends() }

// NewContinuousScheduler builds the per-node core scheduler used by the
// plain HPC backend: a unit occupies cores on exactly one node, FIFO
// with head-of-line blocking.
func NewContinuousScheduler(e *sim.Engine, nodes []*cluster.Node) AgentScheduler {
	return core.NewContinuousScheduler(e, nodes)
}

// NewYARNScheduler builds the memory-and-cores scheduler used by the
// YARN backend, sized to the connected cluster's capacity.
func NewYARNScheduler(e *sim.Engine, totalMB int64, totalCores int) AgentScheduler {
	return core.NewYARNScheduler(e, totalMB, totalCores)
}

// NewPoolScheduler builds a single-pool core scheduler — the Spark
// backend's model, and the simplest choice for custom backends whose
// runtime does its own placement.
func NewPoolScheduler(e *sim.Engine, cores int) AgentScheduler {
	return core.NewPoolScheduler(e, cores)
}

package pilot

import (
	"repro/internal/core"
)

// The core entities, re-exported as the public API. These are aliases,
// not copies: values cross freely between this package and internal
// packages that still name the core types.
type (
	// Session owns the client-side managers, the coordination store,
	// and the resource registry (radical.pilot.Session).
	Session = core.Session
	// Resource is a machine registered with a Session.
	Resource = core.Resource
	// Pilot is a placeholder job; once active it executes units.
	Pilot = core.Pilot
	// Unit is a Compute-Unit executed by a pilot's agent.
	Unit = core.Unit
	// PilotManager submits and tracks pilots.
	PilotManager = core.PilotManager
	// UnitManager binds units to pilots and dispatches them.
	UnitManager = core.UnitManager
	// PilotDescription describes a pilot request.
	PilotDescription = core.PilotDescription
	// ComputeUnitDescription describes one Compute-Unit.
	ComputeUnitDescription = core.ComputeUnitDescription
	// UnitContext is handed to a unit's Body: where it runs and which
	// storage it sees.
	UnitContext = core.UnitContext
	// UnitBody is the simulated executable of a Compute-Unit.
	UnitBody = core.UnitBody
	// BootstrapProfile calibrates the agent/cluster bootstrap cost
	// model.
	BootstrapProfile = core.BootstrapProfile

	// PilotState and UnitState follow the RADICAL-Pilot state models.
	PilotState = core.PilotState
	UnitState  = core.UnitState
	// PilotMode names the execution backend a description selects.
	PilotMode = core.PilotMode
	// LaunchMethod selects how the agent starts the unit executable.
	LaunchMethod = core.LaunchMethod

	// PilotCallback and UnitCallback observe state transitions
	// registered through OnStateChange.
	PilotCallback = core.PilotCallback
	UnitCallback  = core.UnitCallback

	// Backend is the pluggable execution-runtime seam; see
	// RegisterBackend.
	Backend = core.Backend
	// BackendContext is the agent view a Backend operates through.
	BackendContext = core.BackendContext
	// AgentScheduler admits units onto a pilot's resources.
	AgentScheduler = core.AgentScheduler
	// Slot is an agent-level resource reservation for one unit.
	Slot = core.Slot
	// YARNMetricsProvider is implemented by backends that can report
	// YARN cluster metrics.
	YARNMetricsProvider = core.YARNMetricsProvider
	// HDFSProvider is implemented by backends whose pilots carry an HDFS
	// filesystem (consumed by the "locality" unit scheduler).
	HDFSProvider = core.HDFSProvider

	// UnitScheduler is the Unit-Manager's pluggable placement-policy
	// seam; see RegisterUnitScheduler and WithScheduler.
	UnitScheduler = core.UnitScheduler
	// Candidate is one live pilot offered to a UnitScheduler, with the
	// manager's in-flight bookkeeping for it.
	Candidate = core.Candidate
	// UnitManagerOption configures NewUnitManager.
	UnitManagerOption = core.UnitManagerOption
)

// Pilot states in lifecycle order.
const (
	PilotNew           = core.PilotNew
	PilotLaunching     = core.PilotLaunching
	PilotPending       = core.PilotPending
	PilotAgentStarting = core.PilotAgentStarting
	PilotActive        = core.PilotActive
	PilotDone          = core.PilotDone
	PilotCanceled      = core.PilotCanceled
	PilotFailed        = core.PilotFailed
)

// Unit states in lifecycle order.
const (
	UnitNew             = core.UnitNew
	UnitPendingResult   = core.UnitPendingResult
	UnitPendingInput    = core.UnitPendingInput
	UnitSchedulingUM    = core.UnitSchedulingUM
	UnitPendingAgent    = core.UnitPendingAgent
	UnitSchedulingAgent = core.UnitSchedulingAgent
	UnitStagingInput    = core.UnitStagingInput
	UnitExecuting       = core.UnitExecuting
	UnitStagingOutput   = core.UnitStagingOutput
	UnitDone            = core.UnitDone
	UnitCanceled        = core.UnitCanceled
	UnitFailed          = core.UnitFailed
)

// The built-in execution backends.
const (
	ModeHPC   = core.ModeHPC
	ModeYARN  = core.ModeYARN
	ModeSpark = core.ModeSpark
)

// Launch methods.
const (
	LaunchDefault = core.LaunchDefault
	LaunchFork    = core.LaunchFork
	LaunchMPIExec = core.LaunchMPIExec
	LaunchAPRun   = core.LaunchAPRun
)

// The built-in unit-scheduling policies selectable through
// WithScheduler; see the core constants for their semantics.
const (
	SchedulerRoundRobin  = core.SchedulerRoundRobin
	SchedulerLeastLoaded = core.SchedulerLeastLoaded
	SchedulerBackfill    = core.SchedulerBackfill
	SchedulerLocality    = core.SchedulerLocality
	SchedulerCoLocate    = core.SchedulerCoLocate
)

// DefaultProfile returns the calibrated bootstrap cost model that
// reproduces the paper's Section IV startup ranges.
func DefaultProfile() BootstrapProfile { return core.DefaultProfile() }

// NewPilotManager creates a pilot manager on the session.
func NewPilotManager(s *Session) *PilotManager { return core.NewPilotManager(s) }

// NewUnitManager creates a unit manager on the session.
//
// Since v2 it takes functional options and returns an error:
//
//	um, err := pilot.NewUnitManager(session, pilot.WithScheduler("backfill"))
//
// With no options the manager uses the round-robin policy and behaves
// exactly like v1 apart from the second return value; it fails with
// ErrUnknownScheduler when WithScheduler names an unregistered policy.
func NewUnitManager(s *Session, opts ...UnitManagerOption) (*UnitManager, error) {
	return core.NewUnitManager(s, opts...)
}

// WithScheduler selects the unit-scheduling policy by registered name
// (default: SchedulerRoundRobin).
func WithScheduler(name string) UnitManagerOption { return core.WithScheduler(name) }

// RegisterUnitScheduler adds a unit-scheduling policy under name, the
// key WithScheduler selects it by — the Unit-Manager analogue of
// RegisterBackend. The factory runs once per UnitManager, so policies
// may keep per-manager state (rotation cursors, load histories) in
// their receiver:
//
//	pilot.RegisterUnitScheduler("random", func() pilot.UnitScheduler { return &randomPolicy{} })
//	um, err := pilot.NewUnitManager(session, pilot.WithScheduler("random"))
//
// Registration fails on nil factories, empty names, and duplicates.
func RegisterUnitScheduler(name string, factory func() UnitScheduler) error {
	return core.RegisterUnitScheduler(name, factory)
}

// UnitSchedulers lists the registered unit-scheduler names, sorted. The
// built-ins ("round-robin", "least-loaded", "backfill", "locality") are
// always present.
func UnitSchedulers() []string { return core.UnitSchedulers() }
